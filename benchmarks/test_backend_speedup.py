"""Wall-clock speedup of the compiled backend over the interpreter.

Runs every registry application at the default iteration count through
both execution engines (prebuilt schedule, warmed kernel cache, best of
``TIMING_ROUNDS`` timings) and records per-app wall-clock times, speedups,
and the geometric mean into ``BENCH_backend.json`` at the repo root.

This measures the *simulator's* speed, not modeled cycles — modeled cycle
counts are backend-identical by construction (see the differential suite).
The compiled backend's contract is: same numbers, several times faster.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.apps.registry import BENCHMARKS, get_benchmark
from repro.experiments.harness import geometric_mean
from repro.graph.flatten import flatten
from repro.runtime import execute
from repro.runtime.compiled import CompiledBackend
from repro.schedule.steady_state import build_schedule

from .conftest import record

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_backend.json"

#: Default ``execute`` iteration count — the workload the speedup claim
#: is made at.
ITERATIONS = 8

#: Timing repetitions per (app, backend); the minimum is reported.
TIMING_ROUNDS = 3


def _time(fn) -> float:
    best = float("inf")
    for _ in range(TIMING_ROUNDS):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _measure() -> dict:
    backend = CompiledBackend()
    apps = {}
    for name in sorted(BENCHMARKS):
        graph = flatten(get_benchmark(name))
        schedule = build_schedule(graph)
        # Warm the kernel cache so the compiled timing reflects steady
        # operation, not one-time compilation.
        execute(graph, schedule, iterations=1, backend=backend)
        interp_s = _time(lambda: execute(graph, schedule,
                                         iterations=ITERATIONS))
        compiled_s = _time(lambda: execute(graph, schedule,
                                           iterations=ITERATIONS,
                                           backend=backend))
        apps[name] = {
            "interp_s": round(interp_s, 6),
            "compiled_s": round(compiled_s, 6),
            "speedup": round(interp_s / compiled_s, 3),
        }
    speedups = [entry["speedup"] for entry in apps.values()]
    return {
        "iterations": ITERATIONS,
        "timing_rounds": TIMING_ROUNDS,
        "apps": apps,
        "geomean_speedup": round(geometric_mean(speedups), 3),
        "kernels_compiled": backend.cache.stats.compiled,
        "kernel_cache_hits": backend.cache.stats.hits,
    }


def test_backend_speedup(benchmark):
    data = benchmark.pedantic(_measure, rounds=1, iterations=1)
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

    lines = [f"{'app':18s} {'interp':>9s} {'compiled':>9s} {'speedup':>8s}"]
    for name, entry in data["apps"].items():
        lines.append(f"{name:18s} {entry['interp_s']:8.3f}s "
                     f"{entry['compiled_s']:8.3f}s {entry['speedup']:7.2f}x")
    lines.append(f"{'geomean':18s} {'':9s} {'':9s} "
                 f"{data['geomean_speedup']:7.2f}x")
    record("backend_speedup", "\n".join(lines))

    # Every app must benefit; the fleet must average >= 3x.
    assert all(entry["speedup"] > 1.0 for entry in data["apps"].values())
    assert data["geomean_speedup"] >= 3.0, data["geomean_speedup"]
