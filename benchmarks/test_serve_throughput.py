"""Measured throughput scaling of the process-sharded serving runtime.

Each app's sessions are driven through a :class:`repro.serve.ServePool`
at 1/2/4 worker processes by a closed-loop client swarm (fixed
concurrency, overloads retried), with the session service time paced the
same way the Figure-13 multicore bench paces actor firings: the worker
pays the session's *modeled* steady-state cycles in wall clock via a
GIL-free ``sleep`` (``SessionSpec.seconds_per_cycle``), so paced
sessions genuinely overlap across worker processes even on a single-CPU
container while the executed outputs stay fully real.

Every measured session's outputs are compared byte-for-byte against a
direct in-process :func:`repro.runtime.execute` reference — the pool
must be a transparent shard even under load.

Results land in ``BENCH_serve.json`` at the repo root (per-worker-count
p50/p99 latency and aggregate throughput, per-app latency breakdown)
and ``results/serve_throughput.txt``.
"""

from __future__ import annotations

import json
import shutil
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.apps.registry import get_benchmark
from repro.graph.flatten import flatten
from repro.runtime import execute
from repro.schedule.steady_state import build_schedule
from repro.serve import ServeOverload, ServePool, SessionSpec, percentile
from repro.simd import compile_graph
from repro.simd.machine import CORE_I7

from .conftest import record

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"

pytestmark = pytest.mark.serve

#: Apps served (acceptance floor: >= 3).
APPS = ("FFT", "BitonicSort", "MatrixMult")

#: Worker-process counts.
WORKERS = (1, 2, 4)

#: Steady iterations per session (kept small: the paced sleep, not the
#: executed compute, should dominate service time on one CPU).
ITERATIONS = 2

#: Target paced service time per session, seconds.
TARGET_SESSION_S = 0.04

#: Measured requests per worker count (cycling over APPS).
REQUESTS = 24

#: Closed-loop clients per worker count: enough to saturate every pool.
def _concurrency(workers: int) -> int:
    return 2 * workers


def _references():
    """Direct in-process runs: parity baseline + pacing calibration."""
    machine = CORE_I7
    refs = {}
    rates = {}
    for name in APPS:
        graph = compile_graph(flatten(get_benchmark(name)),
                              machine, pipeline="full").graph
        ref = execute(graph, build_schedule(graph), machine=machine,
                      iterations=ITERATIONS, backend="compiled")
        refs[name] = ref
        rates[name] = TARGET_SESSION_S / ref.steady_cycles(machine)
    return refs, rates


def _specs(rates):
    return [SessionSpec(benchmark=name, pipeline="full",
                        machine=CORE_I7.name, backend="compiled",
                        iterations=ITERATIONS,
                        seconds_per_cycle=rates[name])
            for name in APPS]


def _closed_loop(pool, specs, concurrency: int, requests: int):
    """Closed-loop swarm that keeps every SessionResult (the stock
    loadgen records latency only; the bench parity-checks outputs)."""
    lock = threading.Lock()
    counter = iter(range(requests))
    served = []  # (app, latency_s, SessionResult)

    def client() -> None:
        while True:
            with lock:
                index = next(counter, None)
            if index is None:
                return
            spec = specs[index % len(specs)]
            arrival = time.perf_counter()
            while True:
                ticket = pool.submit(spec)
                if isinstance(ticket, ServeOverload):
                    time.sleep(0.002)
                    continue
                break
            result = ticket.result(timeout=120.0)
            latency = time.perf_counter() - arrival
            with lock:
                served.append((spec.benchmark, latency, result))

    start = time.perf_counter()
    clients = [threading.Thread(target=client, daemon=True)
               for _ in range(concurrency)]
    for thread in clients:
        thread.start()
    for thread in clients:
        thread.join()
    return served, time.perf_counter() - start


def _measure() -> dict:
    refs, rates = _references()
    specs = _specs(rates)
    runs: dict = {}
    parity_sessions = 0
    for workers in WORKERS:
        with ServePool(workers, policy="round-robin",
                       max_queue_depth=8) as pool:
            # Warm-up: every worker compiles every app once (round-robin
            # over workers * apps sessions), excluded from timing.
            warm = [pool.submit(spec) for spec in specs * workers]
            for ticket in warm:
                assert not isinstance(ticket, ServeOverload)
                assert ticket.result(timeout=120.0).ok
            served, duration = _closed_loop(
                pool, specs, _concurrency(workers), REQUESTS)
            stats = pool.shutdown()

        # Parity: every measured session byte-identical to direct run.
        for app, _latency, result in served:
            assert result.ok, f"{app}: {result.error}"
            ref = refs[app]
            assert result.outputs == list(ref.outputs), \
                f"{app}@{workers}w: served outputs diverged"
            assert result.init_outputs == list(ref.init_outputs)
            parity_sessions += 1

        latencies = sorted(lat for _, lat, _ in served)
        per_app = {}
        for name in APPS:
            app_lat = [lat for app, lat, _ in served if app == name]
            per_app[name] = {
                "requests": len(app_lat),
                "p50_ms": round(percentile(app_lat, 50) * 1e3, 3),
                "p99_ms": round(percentile(app_lat, 99) * 1e3, 3),
            }
        runs[workers] = {
            "concurrency": _concurrency(workers),
            "completed": len(served),
            "duration_s": round(duration, 6),
            "throughput_rps": round(len(served) / duration, 3),
            "p50_ms": round(percentile(latencies, 50) * 1e3, 3),
            "p99_ms": round(percentile(latencies, 99) * 1e3, 3),
            "mean_ms": round(sum(latencies) / len(latencies) * 1e3, 3),
            "per_app": per_app,
            "graph_cache_hits": sum(s["graph_cache_hits"] for s in stats),
        }
    base = runs[WORKERS[0]]["throughput_rps"]
    for entry in runs.values():
        entry["throughput_speedup"] = round(
            entry["throughput_rps"] / base, 3)
    return {
        "machine": CORE_I7.name,
        "backend": "compiled",
        "iterations": ITERATIONS,
        "target_session_s": TARGET_SESSION_S,
        "requests_per_worker_count": REQUESTS,
        "apps": list(APPS),
        "workers": list(WORKERS),
        "parity_sessions": parity_sessions,
        "runs": runs,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def test_serve_throughput_scaling(benchmark):
    data = benchmark.pedantic(_measure, rounds=1, iterations=1)
    json_data = {**data,
                 "runs": {str(w): entry
                          for w, entry in data["runs"].items()}}
    RESULT_PATH.write_text(json.dumps(json_data, indent=2, sort_keys=True)
                           + "\n")

    lines = [f"{'workers':>7s} {'rps':>7s} {'speedup':>8s} {'p50':>8s} "
             f"{'p99':>8s}"]
    for workers, entry in data["runs"].items():
        lines.append(
            f"{workers:>7} {entry['throughput_rps']:7.1f} "
            f"{entry['throughput_speedup']:7.2f}x "
            f"{entry['p50_ms']:6.1f}ms {entry['p99_ms']:6.1f}ms")
    record("serve_throughput", "\n".join(lines))

    # Every measured session was parity-checked against direct execute.
    assert data["parity_sessions"] == REQUESTS * len(WORKERS)
    # Acceptance: 4 worker processes sustain >= 2x the 1-worker
    # aggregate throughput (paced sessions overlap across processes).
    four = data["runs"][WORKERS[-1]]["throughput_speedup"]
    assert four >= 2.0, data["runs"]
    # And nobody scales backwards.
    assert data["runs"][2]["throughput_speedup"] >= 1.0, data["runs"]


def _update_results(section: str, payload: dict) -> None:
    """Merge one bench section into ``BENCH_serve.json`` (the scaling
    test writes the base document; these sections ride along)."""
    data = {}
    if RESULT_PATH.exists():
        data = json.loads(RESULT_PATH.read_text())
    data[section] = payload
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True)
                           + "\n")


def test_serve_transport_comparison(benchmark):
    """The same paced closed-loop workload over both wire transports.

    ``shm_threshold=0`` forces every result's arrays through shared
    memory on the shm side, so the comparison exercises the full
    segment create/attach/unlink path.  Outputs stay parity-checked on
    both transports; the measured numbers land in BENCH_serve.json."""

    def measure() -> dict:
        refs, rates = _references()
        specs = _specs(rates)
        out: dict = {}
        for transport in ("queue", "shm"):
            with ServePool(2, policy="round-robin", max_queue_depth=8,
                           wire_transport=transport,
                           shm_threshold=0) as pool:
                warm = [pool.submit(spec) for spec in specs * 2]
                for ticket in warm:
                    assert ticket.result(timeout=120.0).ok
                served, duration = _closed_loop(pool, specs, 4, REQUESTS)
            for app, _lat, result in served:
                assert result.ok, f"{app}: {result.error}"
                assert result.outputs == list(refs[app].outputs), \
                    f"{app}@{transport}: served outputs diverged"
            latencies = sorted(lat for _, lat, _ in served)
            out[transport] = {
                "completed": len(served),
                "throughput_rps": round(len(served) / duration, 3),
                "p50_ms": round(percentile(latencies, 50) * 1e3, 3),
                "p99_ms": round(percentile(latencies, 99) * 1e3, 3),
            }
        return out

    data = benchmark.pedantic(measure, rounds=1, iterations=1)
    _update_results("transport_runs", data)
    lines = [f"{'transport':>9s} {'rps':>7s} {'p50':>8s} {'p99':>8s}"]
    for transport, entry in data.items():
        lines.append(f"{transport:>9s} {entry['throughput_rps']:7.1f} "
                     f"{entry['p50_ms']:6.1f}ms {entry['p99_ms']:6.1f}ms")
    record("serve_transports", "\n".join(lines))
    assert all(entry["completed"] == REQUESTS for entry in data.values())


def test_serve_store_cold_vs_warm(benchmark):
    """Cold compile vs warm kernel-store startup, per app.

    Each app's first session is timed twice against the same store
    directory: a cold pass (empty store — the worker compiles and
    publishes) and a warm pass (fresh worker process, artifacts on
    disk).  The worker-side ``busy_s`` of that first session is the
    startup cost a store hit removes; acceptance requires the warm pass
    to be at least 2x faster on at least one app."""

    def measure() -> dict:
        store = tempfile.mkdtemp(prefix="macross-bench-store-")
        out: dict = {}
        try:
            for app in APPS + ("FMRadio",):
                spec = SessionSpec(benchmark=app, pipeline="full",
                                   machine=CORE_I7.name,
                                   backend="compiled", iterations=1)
                phases = {}
                for phase in ("cold", "warm"):
                    wall = time.perf_counter()
                    with ServePool(1, max_queue_depth=2,
                                   store_dir=store) as pool:
                        result = pool.run(spec, timeout=120.0)
                    assert result.ok, f"{app} {phase}: {result.error}"
                    phases[phase] = {
                        "busy_s": round(result.busy_s, 6),
                        "wall_s": round(time.perf_counter() - wall, 6),
                    }
                speedup = phases["cold"]["busy_s"] \
                    / max(phases["warm"]["busy_s"], 1e-9)
                out[app] = {**phases,
                            "busy_speedup": round(speedup, 3)}
        finally:
            shutil.rmtree(store, ignore_errors=True)
        return out

    data = benchmark.pedantic(measure, rounds=1, iterations=1)
    _update_results("store_runs", data)
    lines = [f"{'app':>12s} {'cold':>9s} {'warm':>9s} {'speedup':>8s}"]
    for app, entry in data.items():
        lines.append(f"{app:>12s} {entry['cold']['busy_s'] * 1e3:7.1f}ms "
                     f"{entry['warm']['busy_s'] * 1e3:7.1f}ms "
                     f"{entry['busy_speedup']:7.2f}x")
    record("serve_store", "\n".join(lines))
    # Acceptance: the on-disk store makes warm startup >= 2x faster
    # than cold compile on at least one app.
    best = max(entry["busy_speedup"] for entry in data.values())
    assert best >= 2.0, data
