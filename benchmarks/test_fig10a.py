"""Figure 10a: GCC auto-vectorization vs macro-SIMDization vs both.

Paper's shape: GCC auto-vectorization shows unimpressive gains (~1.0-1.1x);
macro-SIMDization averages ~2x; applying the auto-vectorizer on top of
macro-SIMDized code adds ~1.5%.
"""

from repro.experiments import run_fig10a

from .conftest import record


def test_fig10a(benchmark):
    result = benchmark.pedantic(run_fig10a, rounds=1, iterations=1)
    record("fig10a", result.render())

    assert result.mean_autovec < 1.25, "GCC autovec should be unimpressive"
    assert result.mean_macro > 1.8, "macro-SIMDization should average ~2x"
    assert result.macro_vs_autovec_percent > 40.0
    for row in result.rows:
        assert row.macro >= row.autovec * 0.99, row.benchmark
        assert row.macro_autovec >= row.macro * 0.999, row.benchmark
