"""Figure 12: performance benefit of the SAGU on macro-SIMDized code.

Paper's shape: 8.1% average; Matrix Multiply (~22%) and DCT (~17%) highest
(pack/unpack and scalar-memory heavy); BeamFormer and MP3 Decoder lowest
(horizontal-dominated / compute-dominated).
"""

from repro.experiments import run_fig12

from .conftest import record


def test_fig12(benchmark):
    result = benchmark.pedantic(run_fig12, rounds=1, iterations=1)
    record("fig12", result.render())

    by_name = {r.benchmark: r.improvement_percent for r in result.rows}
    assert 4.0 < result.mean_percent < 20.0, "paper: 8.1% average"
    assert by_name["MatrixMult"] > result.mean_percent
    assert by_name["MatrixMultBlock"] > result.mean_percent
    assert by_name["MP3Decoder"] < result.mean_percent
    assert by_name["BeamFormer"] < result.mean_percent
    assert all(v >= -0.5 for v in by_name.values())
