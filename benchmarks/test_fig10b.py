"""Figure 10b: ICC auto-vectorization vs macro-SIMDization vs both.

Paper's shape: ICC auto-vectorization averages 1.34x; macro-SIMDization
2.07x (+26% over ICC); FMRadio is the one benchmark where ICC's inner-loop
vectorization is competitive with macro-SIMDization.
"""

from repro.experiments import run_fig10b

from .conftest import record


def test_fig10b(benchmark):
    result = benchmark.pedantic(run_fig10b, rounds=1, iterations=1)
    record("fig10b", result.render())

    assert 1.2 < result.mean_autovec < 1.8, "ICC should land near 1.34x"
    assert result.mean_macro > 1.8
    assert result.macro_vs_autovec_percent > 15.0
    by_name = {r.benchmark: r for r in result.rows}
    # FMRadio: ICC's aligned inner-loop vectorization is competitive (§5).
    fm = by_name["FMRadio"]
    assert fm.autovec >= fm.macro * 0.9
