"""Figure 11: percent speedup of vertical over single-actor SIMDization.

Paper's shape: ~40% average; Matrix Multiply Block largest (114%);
near-zero for FilterBank/BeamFormer (horizontal) and FMRadio/AudioBeam
(isolated vectorizable actors).
"""

from repro.experiments import run_fig11

from .conftest import record


def test_fig11(benchmark):
    result = benchmark.pedantic(run_fig11, rounds=1, iterations=1)
    record("fig11", result.render())

    by_name = {r.benchmark: r.improvement_percent for r in result.rows}
    assert result.mean_percent > 8.0
    assert by_name["MatrixMultBlock"] == max(by_name.values())
    assert by_name["MatrixMultBlock"] > 30.0
    for flat in ("FilterBank", "BeamFormer", "FMRadio", "AudioBeam"):
        assert abs(by_name[flat]) < 1.0, flat
    assert all(v >= -0.5 for v in by_name.values())
