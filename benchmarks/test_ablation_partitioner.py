"""Ablation (beyond the paper): multicore partitioner comparison.

LPT (load-balanced, communication-oblivious — the paper's naive scheduler)
vs contiguous topological slicing (keeps pipelines together: fewer cut
tapes, worse balance) at 4 cores.
"""

from repro.experiments.harness import arithmetic_mean, scalar_graph
from repro.experiments.tables import format_table
from repro.multicore import partition_contiguous, partition_lpt, simulate_multicore
from repro.runtime import execute
from repro.simd.machine import CORE_I7

from .conftest import record

BENCHES = ("DCT", "FFT", "FilterBank", "MP3Decoder", "BitonicSort",
           "MatrixMult")


def run_comparison():
    rows = []
    for name in BENCHES:
        graph = scalar_graph(name)
        base = execute(graph, machine=CORE_I7,
                       iterations=2).cycles_per_output(CORE_I7)
        lpt = simulate_multicore(graph, CORE_I7, 4,
                                 partitioner=partition_lpt)
        contiguous = simulate_multicore(graph, CORE_I7, 4,
                                        partitioner=partition_contiguous)
        rows.append((name,
                     base / lpt.makespan_per_output,
                     base / contiguous.makespan_per_output,
                     lpt.comm_cycles,
                     contiguous.comm_cycles))
    means = [arithmetic_mean([r[i] for r in rows]) for i in (1, 2)]
    rows.append(("AVERAGE", *means, 0.0, 0.0))
    return rows, means


def test_partitioner_ablation(benchmark):
    rows, means = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    record("ablation_partitioner",
           format_table(["benchmark", "LPT 4c", "contiguous 4c",
                         "LPT comm/out", "contig comm/out"], rows))
    lpt_mean, contig_mean = means
    assert lpt_mean > 1.0
    # Contiguous slicing cuts fewer tapes on deep pipelines.
    by_name = {r[0]: r for r in rows}
    assert by_name["MP3Decoder"][4] <= by_name["MP3Decoder"][3]
