"""Benchmark-harness helpers.

Every bench regenerates one of the paper's evaluation artifacts, prints the
reproduced table, and writes it under ``results/`` for inspection.  The
timing pytest-benchmark reports is the harness runtime (compile + simulate
for all benchmarks) — the *reproduction data* are the rendered tables.
"""

from __future__ import annotations

from pathlib import Path

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def record(name: str, text: str) -> None:
    RESULTS_DIR.mkdir(exist_ok=True)
    (RESULTS_DIR / f"{name}.txt").write_text(text + "\n")
    print(f"\n== {name} ==")
    print(text)
