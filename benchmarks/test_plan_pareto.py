"""The planning subsystem's memory-vs-throughput front, per app.

For every suite app on the Core i7 and the gpu-like target this bench
prices every registered partitioner through one shared
:class:`~repro.plan.context.PlanContext`, runs the branch-and-bound
optimizer, sweeps the Pareto front, and records the whole-program
vectorization choice.  The front answers the ROADMAP's memory-constrained
scheduling question — how much channel-buffer memory each increment of
modeled throughput costs on each target — and the i7-vs-gpu-like diff
column shows the co-optimization actually changing its mind per target.

Results land in ``BENCH_plan.json`` at the repo root (uploaded as a CI
artifact by the ``plan`` job) and ``results/plan_pareto.txt``.
"""

from __future__ import annotations

import json
from pathlib import Path

from repro.experiments.harness import DEFAULT_BENCHMARKS
from repro.experiments.planning import planning_report

from .conftest import record

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_plan.json"

CORES = 4
POINTS = 6
TARGETS = ("core-i7-sse4", "gpu-like")


def _measure() -> dict:
    rows = planning_report(DEFAULT_BENCHMARKS, targets=TARGETS,
                           cores=CORES, points=POINTS)
    apps: dict = {}
    for row in rows:
        apps.setdefault(row.benchmark, {})[row.target] = row.as_dict()

    diffs = []
    for name, per_target in apps.items():
        i7, gpu = per_target[TARGETS[0]], per_target[TARGETS[1]]
        part_differs = (i7["optimizer"]["memory_items"],
                        i7["strategies"]["opt"]["cores_used"]) != \
                       (gpu["optimizer"]["memory_items"],
                        gpu["strategies"]["opt"]["cores_used"])
        vec_differs = i7["vectorization"]["techniques"] != \
            gpu["vectorization"]["techniques"]
        if part_differs or vec_differs:
            diffs.append(name)
    return {"cores": CORES, "points": POINTS, "targets": list(TARGETS),
            "apps": apps, "plans_differ_across_targets": sorted(diffs)}


def _render(data: dict) -> str:
    lines = [f"{'app':16s} {'target':13s} {'lpt mk':>9s} {'opt mk':>9s} "
             f"{'lpt mem':>8s} {'opt mem':>8s} {'front':>5s}  vectorization"]
    for name, per_target in sorted(data["apps"].items()):
        for target, row in sorted(per_target.items()):
            lpt = row["strategies"]["lpt"]
            opt = row["strategies"]["opt"]
            vec = row["vectorization"]
            techniques = ",".join(f"{k}x{v}" for k, v
                                  in sorted(vec["techniques"].items()))
            lines.append(
                f"{name:16s} {target:13s} {lpt['makespan']:9.1f} "
                f"{opt['makespan']:9.1f} {lpt['memory_items']:8d} "
                f"{opt['memory_items']:8d} {len(row['front']):5d}  "
                f"{vec['mode']}({vec['speedup']:.2f}x) {techniques}")
    lines.append("plans differ across targets: "
                 + ", ".join(data["plans_differ_across_targets"]))
    return "\n".join(lines)


def test_plan_pareto(benchmark):
    data = benchmark.pedantic(_measure, rounds=1, iterations=1)
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    record("plan_pareto", _render(data))

    for name, per_target in data["apps"].items():
        i7 = per_target["core-i7-sse4"]
        # Acceptance: the optimizer is never worse than greedy LPT on
        # either axis, and the i7 front offers >= 3 trade-off points.
        assert i7["optimizer"]["makespan"] <= \
            i7["strategies"]["lpt"]["makespan"] + 1e-6, name
        assert i7["optimizer"]["memory_items"] <= \
            i7["strategies"]["lpt"]["memory_items"], name
        assert len(i7["front"]) >= 3, \
            f"{name}: {len(i7['front'])} Pareto points on the i7"
        for prev, cur in zip(i7["front"], i7["front"][1:]):
            assert cur["makespan"] > prev["makespan"], name
            assert cur["memory_items"] < prev["memory_items"], name
    assert len(data["plans_differ_across_targets"]) >= 2, \
        "gpu-like target no longer reshapes any plan vs the i7"
