"""Figure 13: multicore scheduling with and without macro-SIMDization.

Paper's shape (averages): 2 cores 1.28x -> 2.03x with SIMD; 4 cores
1.85x -> 3.17x; macro-SIMDized 2-core execution competitive with scalar
4-core execution.
"""

from repro.experiments import run_fig13

from .conftest import record


def test_fig13(benchmark):
    result = benchmark.pedantic(run_fig13, rounds=1, iterations=1)
    record("fig13", result.render())

    mean_2c = result.mean("2c")
    mean_4c = result.mean("4c")
    mean_2cs = result.mean("2c+simd")
    mean_4cs = result.mean("4c+simd")
    assert 1.0 < mean_2c < mean_4c, "scalar multicore scales sublinearly"
    assert mean_2cs > mean_2c and mean_4cs > mean_4c
    # The paper's headline: 4-core scalar within ~5% of 2-core + SIMD.
    assert mean_2cs >= mean_4c * 0.95
