"""Ablation (beyond the paper): tape-access strategy comparison.

Columns: macro-SIMDized with scalar strided accesses (§3.1), with the
permutation optimization (§3.4, no SAGU), and with the SAGU.  This
decomposes Figure 12 into its two mechanisms.
"""

from repro.experiments.harness import (
    DEFAULT_BENCHMARKS,
    Variants,
    arithmetic_mean,
)
from repro.experiments.tables import format_table
from repro.simd.machine import CORE_I7, CORE_I7_SAGU
from repro.simd.pipeline import MacroSSOptions

from .conftest import record

_SCALAR_TAPES = MacroSSOptions(tape_optimization=False)


def run_ablation():
    rows = []
    for name in DEFAULT_BENCHMARKS:
        plain = Variants(name, CORE_I7)
        sagu = Variants(name, CORE_I7_SAGU)
        base = plain.baseline_cpo()
        rows.append((
            name,
            base / plain.macro_cpo(_SCALAR_TAPES, tag="scalar-tapes"),
            base / plain.macro_cpo(tag="permute"),
            base / sagu.macro_cpo(tag="sagu"),
        ))
    means = [arithmetic_mean([r[i] for r in rows]) for i in (1, 2, 3)]
    rows.append(("AVERAGE", *means))
    return rows, means


def test_tape_strategy_ablation(benchmark):
    rows, means = benchmark.pedantic(run_ablation, rounds=1, iterations=1)
    record("ablation_tape",
           format_table(["benchmark", "scalar tapes", "permute", "SAGU"],
                        rows))
    scalar_tapes, permute, sagu = means
    assert permute >= scalar_tapes, "permutation optimization helps"
    assert sagu >= permute, "SAGU at least matches permutes"
