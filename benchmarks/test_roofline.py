"""Roofline bandwidth micro-suite for the vector data-plane backend.

Runs the STREAM idiom family (copy/scale/add/triad over ``BLOCK``-wide
tapes) and every paper application through all three execution backends,
reporting achieved MB/s per backend and the vector-over-compiled wall
speedup into ``BENCH_roofline.json`` at the repo root.

STREAM traffic is accounted the classic way — (reads + writes) x 8 bytes
per element through the measured kernel: 2 words/element for copy and
scale, 3 for add and triad.  Paper-app MB/s is terminal-output
throughput, a lower bound on tape traffic.  Every measured configuration
is parity-checked against the interpreter at the *same* iteration count
(the reference run doubles as the interp timing), and any actor that
falls off the vector fast path is flagged with its recorded reason.

STREAM kernels additionally run against a *list-tape-forced* vector
backend (same batch kernels, plain list tapes) so the report carries a
conversion-overhead column: ``nd_vs_list`` is how much the ndarray-native
tapes buy over round-tripping every batch through ``asarray``/``tolist``.

Acceptance gates (ISSUE 7 + ISSUE 8): vector >= 5x compiled on at least
one STREAM kernel, >= 1.5x geomean across the paper apps, and nd tapes
>= 1.5x list tapes on at least one STREAM kernel.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

np = pytest.importorskip("numpy")

from repro.apps.registry import BENCHMARKS, get_benchmark
from repro.apps.stream import BLOCK, STREAM_APPS
from repro.experiments.harness import geometric_mean
from repro.graph.flatten import flatten
from repro.runtime import execute
from repro.runtime.backends import resolve_backend
from repro.runtime.tape import Tape
from repro.runtime.vector.backend import VectorBackend
from repro.schedule.steady_state import build_schedule

from .conftest import record

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_roofline.json"

#: Steady iterations per timed run.  STREAM kernels get a deep run so the
#: iteration-coalesced batch amortizes per-batch validation; the heavier
#: paper apps get the same workload the backend-speedup bench uses.
STREAM_ITERATIONS = 1024
APP_ITERATIONS = 64

#: Timing repetitions for the fast backends; the minimum is reported.
#: The interpreter reference is timed once — it also serves as the
#: parity oracle, so it must run at the full iteration count anyway.
TIMING_ROUNDS = 3

#: STREAM words moved per element through the measured kernel.
STREAM_WORDS = {"StreamCopy": 2, "StreamScale": 2,
                "StreamAdd": 3, "StreamTriad": 3}


def _time(fn, rounds: int = TIMING_ROUNDS) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def _vector_summary(result, graph):
    statuses = result.vectorized or {}
    hits = sum(1 for v in statuses.values() if v.startswith("vector"))
    fallbacks = sorted(
        f"{graph.actors[actor_id].name}: {status.split(': ', 1)[-1]}"
        for actor_id, status in statuses.items()
        if not status.startswith("vector"))
    return f"{hits}/{len(statuses)}", fallbacks


def _list_tape_vector_backend() -> VectorBackend:
    """A fresh vector backend forced onto plain list tapes — the PR 7
    data plane, kept measurable as the conversion-overhead baseline."""
    backend = VectorBackend()
    backend.tape_class = Tape
    return backend


def _measure_app(name: str, iterations: int, compiled, vector,
                 list_vector=None) -> dict:
    graph = flatten(get_benchmark(name))
    schedule = build_schedule(graph)
    # Warm kernel caches and batch-kernel builds out of the timings.
    execute(graph, schedule, iterations=1, backend=compiled)
    warm = execute(graph, schedule, iterations=1, backend=vector)

    start = time.perf_counter()
    ref = execute(graph, schedule, iterations=iterations)
    interp_s = time.perf_counter() - start
    compiled_s = _time(lambda: execute(graph, schedule,
                                       iterations=iterations,
                                       backend=compiled))
    vector_s = _time(lambda: execute(graph, schedule,
                                     iterations=iterations,
                                     backend=vector))

    # Parity at the measured configuration: interpreter-exact or bust.
    got = execute(graph, schedule, iterations=iterations, backend=vector)
    assert got.outputs == ref.outputs, f"{name}: steady outputs diverge"
    assert got.init_outputs == ref.init_outputs, \
        f"{name}: init outputs diverge"

    words = STREAM_WORDS.get(name)
    if words is not None:
        traffic = words * BLOCK * iterations * 8
    else:
        traffic = len(ref.outputs) * 8
    vectorized, fallbacks = _vector_summary(warm, graph)
    entry = {
        "interp_s": round(interp_s, 6),
        "compiled_s": round(compiled_s, 6),
        "vector_s": round(vector_s, 6),
        "interp_mbps": round(traffic / interp_s / 1e6, 3),
        "compiled_mbps": round(traffic / compiled_s / 1e6, 3),
        "vector_mbps": round(traffic / vector_s / 1e6, 3),
        "vector_vs_compiled": round(compiled_s / vector_s, 3),
        "vectorized": vectorized,
        "fallbacks": fallbacks,
    }
    if list_vector is not None:
        execute(graph, schedule, iterations=1, backend=list_vector)
        listvec_s = _time(lambda: execute(graph, schedule,
                                          iterations=iterations,
                                          backend=list_vector))
        listed = execute(graph, schedule, iterations=iterations,
                         backend=list_vector)
        assert listed.outputs == ref.outputs, \
            f"{name}: list-tape vector outputs diverge"
        entry["listvec_s"] = round(listvec_s, 6)
        entry["listvec_mbps"] = round(traffic / listvec_s / 1e6, 3)
        entry["nd_vs_list"] = round(listvec_s / vector_s, 3)
    return entry


def _measure() -> dict:
    compiled = resolve_backend("compiled")
    vector = resolve_backend("vector")
    list_vector = _list_tape_vector_backend()
    stream = {name: _measure_app(name, STREAM_ITERATIONS, compiled, vector,
                                 list_vector)
              for name in STREAM_APPS}
    apps = {name: _measure_app(name, APP_ITERATIONS, compiled, vector)
            for name in sorted(BENCHMARKS) if name not in STREAM_APPS}
    speedups = [entry["vector_vs_compiled"] for entry in apps.values()]
    return {
        "block": BLOCK,
        "iterations": {"stream": STREAM_ITERATIONS, "apps": APP_ITERATIONS},
        "timing_rounds": TIMING_ROUNDS,
        "stream": stream,
        "apps": apps,
        "max_stream_vector_vs_compiled": max(
            entry["vector_vs_compiled"] for entry in stream.values()),
        "max_stream_nd_vs_list": max(
            entry["nd_vs_list"] for entry in stream.values()),
        "geomean_app_vector_vs_compiled": round(
            geometric_mean(speedups), 3),
        "parity": "every measured configuration interp-exact",
    }


def _render(data: dict) -> str:
    lines = [f"{'kernel':18s} {'interp':>10s} {'compiled':>10s} "
             f"{'vector':>10s} {'vec/comp':>9s} {'nd/list':>8s}  vectorized"]
    for section in ("stream", "apps"):
        for name, e in data[section].items():
            flag = " !" + "; ".join(e["fallbacks"]) if e["fallbacks"] else ""
            conv = (f"{e['nd_vs_list']:7.2f}x" if "nd_vs_list" in e
                    else f"{'-':>8s}")
            lines.append(
                f"{name:18s} {e['interp_mbps']:8.2f}MB/s "
                f"{e['compiled_mbps']:8.2f}MB/s {e['vector_mbps']:8.2f}MB/s "
                f"{e['vector_vs_compiled']:8.2f}x {conv}  "
                f"{e['vectorized']}{flag}")
    lines.append(
        f"max STREAM vector/compiled: "
        f"{data['max_stream_vector_vs_compiled']:.2f}x; "
        f"nd tapes over list tapes: "
        f"{data['max_stream_nd_vs_list']:.2f}x; "
        f"paper-app geomean: {data['geomean_app_vector_vs_compiled']:.2f}x")
    return "\n".join(lines)


def test_roofline(benchmark):
    data = benchmark.pedantic(_measure, rounds=1, iterations=1)
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")
    record("roofline", _render(data))
    assert data["max_stream_vector_vs_compiled"] >= 5.0, \
        "vector backend lost its bandwidth edge on every STREAM kernel"
    assert data["geomean_app_vector_vs_compiled"] >= 1.5, \
        "vector backend no longer clears 1.5x geomean on the paper apps"
    assert data["max_stream_nd_vs_list"] >= 1.5, \
        "ndarray tapes lost their edge over list tapes on STREAM"
