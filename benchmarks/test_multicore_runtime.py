"""Measured wall-clock scaling of the thread-based parallel runtime.

This is the bench that makes Figure 13 *empirical*: each app is run on
1/2/4 worker threads through :func:`repro.multicore.parallel_execute`
with a calibrated pace — every actor firing carries a wall-clock cost
proportional to its modeled cycles, paid via ``time.sleep`` (which
releases the GIL, so paced firings genuinely overlap across worker
threads even on a single-CPU container).  The measured wall-time scaling
is recorded next to the Figure 13 makespan *model* for the same LPT
partition, and the run is only accepted if the parallel outputs stay
bit-identical to the sequential reference.

Results land in ``BENCH_multicore.json`` at the repo root and
``results/multicore_runtime.txt``.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

from repro.apps.registry import get_benchmark
from repro.graph.flatten import flatten
from repro.multicore import (
    calibrated_pace,
    parallel_execute,
    partition_lpt,
    profile_actor_costs,
    simulate_multicore,
)
from repro.runtime import execute
from repro.runtime.compiled import CompiledBackend
from repro.schedule.steady_state import build_schedule
from repro.simd.machine import CORE_I7

from .conftest import record

RESULT_PATH = Path(__file__).resolve().parent.parent / "BENCH_multicore.json"

#: Apps measured (pipeline-heavy, split-join-heavy, and the big one).
APPS = ("DCT", "FilterBank", "MP3Decoder")

#: Worker-thread counts.
WORKERS = (1, 2, 4)

#: Steady iterations per measured run.
ITERATIONS = 4

#: Calibration target: the paced single-worker run takes about this long,
#: so per-firing sleeps dominate scheduling noise without making the
#: bench slow.
TARGET_SINGLE_S = 0.4

#: Timing repetitions per (app, workers); the minimum wall time counts.
TIMING_ROUNDS = 2


def _measure() -> dict:
    backend = CompiledBackend()
    machine = CORE_I7
    apps: dict = {}
    for name in APPS:
        graph = flatten(get_benchmark(name))
        schedule = build_schedule(graph)
        # Sequential reference: warms the kernel cache and provides the
        # parity baseline.
        seq = execute(graph, schedule, machine=machine,
                      iterations=ITERATIONS, backend=backend)
        total_cycles = seq.steady_cycles(machine)
        seconds_per_cycle = TARGET_SINGLE_S / total_cycles
        pace = calibrated_pace(graph, machine, schedule,
                               seconds_per_cycle=seconds_per_cycle)
        costs = profile_actor_costs(graph, machine)

        per_workers: dict = {}
        for workers in WORKERS:
            partition = partition_lpt(graph, costs, workers)
            model = simulate_multicore(graph, machine, workers,
                                       partitioner=partition_lpt,
                                       iterations=ITERATIONS)
            best_wall = float("inf")
            par = None
            for _ in range(TIMING_ROUNDS):
                par = parallel_execute(graph, schedule, machine=machine,
                                       iterations=ITERATIONS,
                                       backend=backend, cores=workers,
                                       partition=partition, pace=pace)
                best_wall = min(best_wall, par.wall_time_s)
            assert par.outputs == seq.outputs, \
                f"{name}@{workers}c: parallel outputs diverged"
            assert par.init_outputs == seq.init_outputs
            per_workers[workers] = {
                "wall_s": round(best_wall, 6),
                "model_makespan_per_output":
                    round(model.makespan_per_output, 3),
                "channels": len(par.channel_stats),
                "stalls": par.total_stalls(),
            }
        base = per_workers[WORKERS[0]]
        for workers, entry in per_workers.items():
            entry["measured_speedup"] = round(
                base["wall_s"] / entry["wall_s"], 3)
            entry["modeled_speedup"] = round(
                base["model_makespan_per_output"]
                / entry["model_makespan_per_output"], 3)
        apps[name] = per_workers
    return {
        "machine": machine.name,
        "iterations": ITERATIONS,
        "timing_rounds": TIMING_ROUNDS,
        "target_single_worker_s": TARGET_SINGLE_S,
        "workers": list(WORKERS),
        "apps": apps,
        "generated_at": time.strftime("%Y-%m-%dT%H:%M:%S"),
    }


def test_multicore_runtime_scaling(benchmark):
    data = benchmark.pedantic(_measure, rounds=1, iterations=1)
    RESULT_PATH.write_text(json.dumps(data, indent=2, sort_keys=True) + "\n")

    lines = [f"{'app':12s} {'workers':>7s} {'wall':>8s} {'measured':>9s} "
             f"{'modeled':>8s} {'stalls':>6s}"]
    for name, per_workers in data["apps"].items():
        for workers, entry in per_workers.items():
            lines.append(
                f"{name:12s} {workers:>7} {entry['wall_s']:7.3f}s "
                f"{entry['measured_speedup']:8.2f}x "
                f"{entry['modeled_speedup']:7.2f}x {entry['stalls']:>6}")
    record("multicore_runtime", "\n".join(lines))

    # Measured wall-clock scaling: at least one app reaches >= 1.5x on
    # four workers (the modeled makespan predicts more; thread scheduling
    # and non-paced runtime overhead eat part of it).
    four = [per_workers[WORKERS[-1]]["measured_speedup"]
            for per_workers in data["apps"].values()]
    assert max(four) >= 1.5, four
    # Nobody scales *backwards* past noise.
    assert all(s >= 0.8 for s in four), four
    # Adding workers never slows the paced run down dramatically, and the
    # measured scaling stays within the model's prediction (the model is
    # an upper bound: it prices communication but not thread overhead).
    for name, per_workers in data["apps"].items():
        for workers, entry in per_workers.items():
            assert entry["measured_speedup"] <= \
                entry["modeled_speedup"] * 1.35 + 0.1, (name, workers)
