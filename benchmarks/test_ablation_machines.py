"""Ablation (beyond the paper): retargeting across SIMD standards.

The paper's motivation (§1) is that streaming programs should retarget
across SIMD instruction sets that differ in capabilities.  This bench
compares macro-SIMDization on the SSE4 Core-i7 model against a Neon-like
embedded target with no vector transcendentals: math-heavy apps collapse
to scalar there, integer/shuffle apps are unaffected.
"""

from repro.experiments.harness import Variants, arithmetic_mean
from repro.experiments.tables import format_table
from repro.simd.machine import CORE_I7, NEON_LIKE

from .conftest import record

BENCHES = ("BitonicSort", "DES", "DCT", "MP3Decoder", "Vocoder", "FFT")


def run_comparison():
    rows = []
    for name in BENCHES:
        sse = Variants(name, CORE_I7)
        neon = Variants(name, NEON_LIKE)
        rows.append((name,
                     sse.baseline_cpo() / sse.macro_cpo(),
                     neon.baseline_cpo() / neon.macro_cpo()))
    means = (arithmetic_mean([r[1] for r in rows]),
             arithmetic_mean([r[2] for r in rows]))
    rows.append(("AVERAGE", *means))
    return rows, means


def test_machine_retargeting(benchmark):
    rows, means = benchmark.pedantic(run_comparison, rounds=1, iterations=1)
    record("ablation_machines",
           format_table(["benchmark", "core-i7/SSE4", "neon-like"], rows))
    by_name = {r[0]: r for r in rows}
    # Integer/min-max apps keep their speedup without SVML...
    assert by_name["DES"][2] > 1.5
    assert by_name["BitonicSort"][2] > 1.3
    # ...while transcendental-heavy apps lose a chunk of theirs (the
    # pow-based dequantizer goes scalar; the rest still vectorizes).
    assert by_name["MP3Decoder"][2] < by_name["MP3Decoder"][1] * 0.85
    assert means[1] < means[0]
