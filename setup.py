"""Shim for environments without the ``wheel`` package: enables
``pip install -e . --no-build-isolation`` via the legacy setup.py path."""
from setuptools import setup

setup()
