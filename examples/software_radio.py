#!/usr/bin/env python3
"""Software radio: an FM receiver with a multi-band equalizer.

The intro-motivating workload of the paper: an FMRadio-style graph whose
equalizer is a split-join of eight isomorphic band filters.  The example
shows the three SIMDization techniques cooperating on one program —

* the band filters are *horizontally* SIMDized (two groups of four, since
  the split-join is 2x the SIMD width),
* the demodulator chain is SIMDized as single actors,
* and the equalizer-combiner is vectorized with strided tape accesses.

It then sweeps the equalizer width to show how horizontal SIMDization
scales with the number of isomorphic bands.

Run:  python examples/software_radio.py
"""

import math

from repro import CORE_I7, Program, compile_graph, execute, flatten, pipeline
from repro.apps.dspkit import adder, bandpass_coeffs, fir_filter, gain, lowpass_coeffs
from repro.apps.sources import sine_source
from repro.graph import duplicate_splitter, roundrobin_joiner, splitjoin


def build_receiver(bands: int, taps: int = 32) -> Program:
    band_pipelines = []
    for index in range(bands):
        low = math.pi * index / bands
        high = math.pi * (index + 1) / bands
        band_pipelines.append(pipeline(
            fir_filter(f"band{index}", bandpass_coeffs(taps, low, high)),
            gain(f"gain{index}", 1.0 / (1.0 + index)),
        ))
    return Program(f"radio{bands}", pipeline(
        sine_source("antenna", push=8, omega=0.59),
        fir_filter("rf_lowpass", lowpass_coeffs(taps, math.pi / 2)),
        splitjoin(duplicate_splitter(bands), band_pipelines,
                  roundrobin_joiner([1] * bands)),
        adder("speaker", bands),
    ))


def main() -> None:
    print("FM receiver, 8-band equalizer")
    print("=" * 60)
    graph = flatten(build_receiver(8))
    scalar = execute(graph, machine=CORE_I7, iterations=2)
    compiled = compile_graph(graph, CORE_I7)

    horizontal = sum(1 for d in compiled.report.decisions.values()
                     if d == "horizontal")
    single = sum(1 for d in compiled.report.decisions.values()
                 if d == "single")
    print(f"horizontally SIMDized actors: {horizontal}")
    print(f"single-actor SIMDized actors: {single}")
    print(f"horizontal split-joins      : "
          f"{len(compiled.report.horizontal_splitjoins)}")

    simd = execute(compiled.graph, machine=CORE_I7, iterations=1)
    n = min(len(scalar.outputs), len(simd.outputs))
    assert simd.outputs[:n] == scalar.outputs[:n]
    print(f"outputs identical ({n} samples), e.g. "
          f"{[round(x, 5) for x in simd.outputs[:4]]}")

    print("\nequalizer width sweep (speedup from macro-SIMDization):")
    for bands in (4, 8, 16):
        graph = flatten(build_receiver(bands))
        scalar_cpo = execute(graph, machine=CORE_I7,
                             iterations=2).cycles_per_output(CORE_I7)
        compiled = compile_graph(graph, CORE_I7)
        simd_cpo = execute(compiled.graph, machine=CORE_I7,
                           iterations=1).cycles_per_output(CORE_I7)
        print(f"  {bands:2d} bands: {scalar_cpo / simd_cpo:.2f}x "
              f"({len(compiled.report.horizontal_splitjoins)} split-join(s) "
              "horizontally SIMDized)")


if __name__ == "__main__":
    main()
