#!/usr/bin/env python3
"""JPEG encoder front end: vertical SIMDization and the SAGU.

A block-transform pipeline (level shift -> 8x8 row DCT -> column DCT ->
quantize -> zig-zag reorder) is exactly the deep stateless pipeline that
vertical SIMDization (§3.2) was built for: MacroSS fuses the whole chain
into one coarse actor whose internal traffic moves as whole vectors.

The example compares four configurations on the machine model:

* scalar,
* single-actor SIMDization only (pack/unpack at every actor boundary),
* full MacroSS (vertical fusion),
* full MacroSS on a SAGU-equipped machine (§3.4).

Run:  python examples/jpeg_frontend.py
"""

from repro import (
    CORE_I7,
    CORE_I7_SAGU,
    FilterSpec,
    MacroSSOptions,
    Program,
    compile_graph,
    execute,
    flatten,
    pipeline,
)
from repro.apps.dct import AREA, make_col_dct, make_quantizer, make_row_dct
from repro.apps.sources import lcg_source
from repro.ir import FLOAT, WorkBuilder


def make_level_shift() -> FilterSpec:
    """JPEG's -128 level shift (here: center the synthetic samples)."""
    b = WorkBuilder()
    with b.loop("i", 0, AREA):
        b.push(b.pop() - 0.5)
    return FilterSpec("LevelShift", pop=AREA, push=AREA, work_body=b.build())


def make_zigzag() -> FilterSpec:
    """Zig-zag scan order of the 8x8 block."""
    order = _zigzag_order()
    b = WorkBuilder()
    block = b.array("blk", FLOAT, AREA)
    with b.loop("i", 0, AREA) as i:
        b.set(block[i], b.pop())
    for index in order:
        b.push(block[index])
    return FilterSpec("ZigZag", pop=AREA, push=AREA, work_body=b.build())


def _zigzag_order() -> list[int]:
    order = []
    for diag in range(15):
        rows = range(max(0, diag - 7), min(8, diag + 1))
        cells = [(r, diag - r) for r in rows]
        if diag % 2 == 0:
            cells.reverse()
        order.extend(r * 8 + c for r, c in cells)
    return order


def build() -> Program:
    return Program("jpeg_frontend", pipeline(
        lcg_source("pixels", push=AREA),
        make_level_shift(),
        make_row_dct(),
        make_col_dct(),
        make_quantizer(),
        make_zigzag(),
    ))


def main() -> None:
    graph = flatten(build())
    scalar = execute(graph, machine=CORE_I7, iterations=2)
    base = scalar.cycles_per_output(CORE_I7)
    print("JPEG front end: 5-actor stateless block pipeline")
    print(f"scalar baseline: {base:9.1f} cycles/output\n")

    configs = [
        ("single-actor only (scalar tapes)",
         CORE_I7, MacroSSOptions(vertical=False, tape_optimization=False)),
        ("vertical fusion (scalar tapes)",
         CORE_I7, MacroSSOptions(tape_optimization=False)),
        ("full MacroSS (permute tape opt)",
         CORE_I7, MacroSSOptions()),
        ("full MacroSS + SAGU hardware",
         CORE_I7_SAGU, MacroSSOptions()),
    ]
    reference = None
    for label, machine, options in configs:
        compiled = compile_graph(graph, machine, options)
        result = execute(compiled.graph, machine=machine, iterations=1)
        n = min(len(scalar.outputs), len(result.outputs))
        assert result.outputs[:n] == scalar.outputs[:n]
        cpo = result.cycles_per_output(machine)
        print(f"{label:36s} {cpo:9.1f} cycles/output  "
              f"{base / cpo:.2f}x")
        if reference is None:
            reference = compiled
    print("\nfused coarse actor:",
          [seg for seg in compile_graph(graph, CORE_I7)
           .report.vertical_segments])


if __name__ == "__main__":
    main()
