#!/usr/bin/env python3
"""Sensor-array beamforming: horizontal SIMDization of *stateful* actors.

Single-actor and vertical SIMDization cannot touch stateful actors — but a
sensor array is full of them: every channel runs the same calibration
filter with its own delay-line state.  Horizontal SIMDization (§3.3) keeps
each channel's state in a vector lane and runs all four in lockstep.

The example also demonstrates the multicore scheduler of Figure 13 on this
graph: partition-first scheduling, then macro-SIMDization per core.

Run:  python examples/sensor_array.py
"""

from repro import CORE_I7, Program, compile_graph, execute, flatten, pipeline
from repro.apps.beamformer import make_beam, make_channel_fir
from repro.apps.dspkit import adder
from repro.apps.sources import lcg_source
from repro.graph import duplicate_splitter, roundrobin_joiner, splitjoin
from repro.multicore import multicore_speedups

CHANNELS = 4
BEAMS = 4


def build() -> Program:
    return Program("sensor_array", pipeline(
        lcg_source("sensors", push=8),
        splitjoin(duplicate_splitter(CHANNELS),
                  [make_channel_fir(i) for i in range(CHANNELS)],
                  roundrobin_joiner([1] * CHANNELS)),
        splitjoin(duplicate_splitter(BEAMS),
                  [make_beam(i) for i in range(BEAMS)],
                  roundrobin_joiner([1] * BEAMS)),
        adder("detector", BEAMS),
    ))


def main() -> None:
    graph = flatten(build())
    scalar = execute(graph, machine=CORE_I7, iterations=4)
    compiled = compile_graph(graph, CORE_I7)

    print("sensor array: 4 stateful channel FIRs + 4 steered beams")
    print("-" * 60)
    for name, decision in sorted(compiled.report.decisions.items()):
        print(f"  {name:14s} {decision}")

    simd = execute(compiled.graph, machine=CORE_I7, iterations=4)
    n = min(len(scalar.outputs), len(simd.outputs))
    assert simd.outputs[:n] == scalar.outputs[:n]
    print(f"\nstateful lanes verified: {n} outputs identical")
    speedup = (scalar.cycles_per_output(CORE_I7)
               / simd.cycles_per_output(CORE_I7))
    print(f"macro-SIMDization speedup: {speedup:.2f}x "
          "(all from horizontal SIMDization)")

    print("\nmulticore scheduling (Figure 13 style):")
    row = multicore_speedups(graph, CORE_I7, [2, 4])
    print(f"  2 cores scalar : {row['2c']:.2f}x    "
          f"2 cores + SIMD: {row['2c+simd']:.2f}x")
    print(f"  4 cores scalar : {row['4c']:.2f}x    "
          f"4 cores + SIMD: {row['4c+simd']:.2f}x")


if __name__ == "__main__":
    main()
