#!/usr/bin/env python3
"""Comb-filter reverb: feedback loops end to end.

StreamIt's third composition form is the feedback loop; MacroSS leaves the
cyclic part scalar (vectorizing inside a loop would multiply its blocking
factor and starve the delay line) but still SIMDizes everything around it.
This example builds a classic comb reverb — y[n] = x[n] + g * y[n - D] —
from a feedback loop whose loop-path is a delay line, runs it, verifies
the impulse response, and shows the compiler's decisions.

It also demonstrates the textual frontend's ``feedbackloop`` syntax for
the same structure.

Run:  python examples/reverb.py
"""

from repro import (
    CORE_I7,
    FilterSpec,
    Program,
    compile_graph,
    execute,
    feedbackloop,
    flatten,
    pipeline,
)
from repro.apps.dspkit import delay_line, fir_filter, lowpass_coeffs
from repro.frontend import compile_source
from repro.ir import WorkBuilder

GAIN = 0.6
DELAY = 3


def make_impulse_source(period: int = 16) -> FilterSpec:
    """A unit impulse every ``period`` samples."""
    from repro import StateVar
    from repro.ir import INT
    b = WorkBuilder()
    n = b.var("n")
    b.push((n.eq(0)) * 1.0)
    b.set(n, (n + 1) % period)
    return FilterSpec("impulse", pop=0, push=1,
                      state=(StateVar("n", INT, 0, 0),),
                      work_body=b.build())


def make_mixer() -> FilterSpec:
    b = WorkBuilder()
    b.push(b.pop() + b.pop() * GAIN)
    return FilterSpec("comb_mix", pop=2, push=1, work_body=b.build())


def build() -> Program:
    comb = feedbackloop(
        make_mixer(),
        delay_line("comb_delay", DELAY),
        join_weights=(1, 1),
        duplicate_split=True,
        enqueue=(0.0,),
    )
    import math
    return Program("reverb", pipeline(
        make_impulse_source(),
        comb,
        fir_filter("tone", lowpass_coeffs(8, math.pi / 2)),
    ))


TEXTUAL = """
void->float filter Impulse() {
    int n = 0;
    work push 1 {
        push(n == 0 ? 1.0 : 0.0);
        n = (n + 1) % 16;
    }
}
float->float filter Mix() {
    work pop 2 push 1 { push(pop() + pop() * 0.6); }
}
float->float filter Delay3() {
    float hist[3];
    int ph = 0;
    work pop 1 push 1 {
        push(hist[ph]);
        hist[ph] = pop();
        ph = (ph + 1) % 3;
    }
}
float->float filter Id() { work pop 1 push 1 { push(pop()); } }
float->float feedbackloop Comb() {
    join roundrobin(1, 1);
    body Mix();
    loop Delay3();
    split duplicate;
    enqueue(0.0);
}
float->float pipeline Main() { add Impulse(); add Comb(); add Id(); }
"""


def main() -> None:
    graph = flatten(build())
    scalar = execute(graph, machine=CORE_I7, iterations=20)
    compiled = compile_graph(graph, CORE_I7)
    print("comb reverb decisions:")
    for name, decision in sorted(compiled.report.decisions.items()):
        print(f"  {name:12s} {decision}")

    simd = execute(compiled.graph, machine=CORE_I7, iterations=20)
    n = min(len(scalar.outputs), len(simd.outputs))
    assert simd.outputs[:n] == scalar.outputs[:n]
    print(f"\noutputs identical ({n} samples)")

    # The textual variant exposes the raw comb response: an impulse echoes
    # at multiples of DELAY + 1 samples with gain^k amplitude.
    text_graph = flatten(compile_source(TEXTUAL))
    response = execute(text_graph, machine=CORE_I7, iterations=16).outputs
    print("\ncomb impulse response (textual frontend):")
    print("  " + "  ".join(f"{x:.3f}" for x in response[:13]))
    echo_positions = [i for i, x in enumerate(response[:13]) if x > 1e-9]
    print(f"  echoes at samples {echo_positions} "
          f"(every {DELAY + 1}, decaying by {GAIN})")


if __name__ == "__main__":
    main()
