#!/usr/bin/env python3
"""The textual StreamIt-subset frontend.

MacroSS consumes StreamIt programs; this reproduction ships a parser for a
StreamIt subset so programs can be written as text, not just through the
Python builder DSL.  The program below is a small vocoder-ish chain with a
four-band split-join; the example parses it, compiles it with MacroSS, and
cross-checks the text-built graph against execution.

Run:  python examples/textual_frontend.py
"""

from repro import CORE_I7, compile_graph, execute, flatten
from repro.codegen import emit_cpp
from repro.frontend import compile_source

SOURCE = """
// ---- a StreamIt-subset program -------------------------------------
void->float filter Oscillator(int n, float omega) {
    float t = 0.0;
    work push n {
        for (int i = 0; i < n; i++) {
            push(sin(t * omega) + 0.25 * sin(t * omega * 3.0));
            t = t + 1.0;
        }
    }
}

float->float filter Window(int taps) {
    work pop 1 push 1 peek taps {
        float acc = 0.0;
        for (int i = 0; i < taps; i++) {
            acc += peek(i);
        }
        push(acc / taps);
        pop();
    }
}

float->float filter Band(float gain) {
    float state_c[2] = {0.3, 0.7};
    work pop 2 push 1 {
        float a = pop();
        float b = pop();
        push((a * state_c[0] + b * state_c[1]) * gain);
    }
}

float->float filter Envelope() {
    float level = 0.0;
    work pop 1 push 1 {
        float x = abs(pop());
        level = level * 0.9 + x * 0.1;
        push(level);
    }
}

float->float pipeline Main() {
    add Oscillator(8, 0.37);
    add Window(8);
    add splitjoin {
        split roundrobin(2, 2, 2, 2);
        add Band(1.0);
        add Band(0.8);
        add Band(0.6);
        add Band(0.4);
        join roundrobin(1, 1, 1, 1);
    };
    add Envelope();
}
"""


def main() -> None:
    program = compile_source(SOURCE)
    graph = flatten(program)
    print("parsed stream graph:")
    print(graph.summary())

    scalar = execute(graph, machine=CORE_I7, iterations=4)
    compiled = compile_graph(graph, CORE_I7)
    print("\ncompilation decisions:")
    for name, decision in sorted(compiled.report.decisions.items()):
        print(f"  {name:12s} {decision}")

    simd = execute(compiled.graph, machine=CORE_I7, iterations=4)
    n = min(len(scalar.outputs), len(simd.outputs))
    assert simd.outputs[:n] == scalar.outputs[:n]
    speedup = (scalar.cycles_per_output(CORE_I7)
               / simd.cycles_per_output(CORE_I7))
    print(f"\noutputs identical ({n}); modeled speedup {speedup:.2f}x")

    cpp = emit_cpp(compiled.graph, CORE_I7)
    print(f"generated C++: {len(cpp.splitlines())} lines "
          "(see `macross compile --cpp` for the full text)")


if __name__ == "__main__":
    main()
