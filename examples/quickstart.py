#!/usr/bin/env python3
"""Quickstart: write a stream program, macro-SIMDize it, run both versions.

Builds a small audio-style pipeline (source -> FIR low-pass -> pair
downsample -> gain), compiles it with MacroSS for the Core-i7/SSE4 machine
model, and shows:

* the compilation report (which technique each actor got),
* that the SIMDized program computes the exact same stream,
* the modeled speedup,
* a peek at the generated C++ with SSE intrinsics.

Run:  python examples/quickstart.py
"""

from repro import (
    CORE_I7,
    FilterSpec,
    Program,
    StateVar,
    WorkBuilder,
    compile_graph,
    execute,
    flatten,
    pipeline,
)
from repro.codegen import emit_cpp
from repro.ir import FLOAT, call


def make_source(push: int = 8) -> FilterSpec:
    """A sampled sinusoid (stateful, so it correctly stays scalar)."""
    b = WorkBuilder()
    t = b.var("t")
    with b.loop("i", 0, push):
        b.push(call("sin", t * 0.31))
        b.set(t, t + 1.0)
    return FilterSpec("source", pop=0, push=push,
                      state=(StateVar("t", FLOAT, 0, 0.0),),
                      work_body=b.build())


def make_lowpass(taps: int = 8) -> FilterSpec:
    """Peeking FIR filter — a sliding window over the input tape."""
    coeffs = tuple(1.0 / taps for _ in range(taps))
    b = WorkBuilder()
    coeff = b.array("coeff", FLOAT, taps, init=coeffs)
    acc = b.let("acc", 0.0)
    with b.loop("i", 0, taps) as i:
        b.set(acc, acc + b.peek(i) * coeff[i])
    b.push(acc)
    b.stmt(b.pop())
    return FilterSpec("lowpass", pop=1, push=1, peek=taps,
                      work_body=b.build())


def make_downsample() -> FilterSpec:
    """pop 2, push 1: average consecutive pairs."""
    b = WorkBuilder()
    b.push((b.pop() + b.pop()) * 0.5)
    return FilterSpec("downsample", pop=2, push=1, work_body=b.build())


def make_gain(factor: float) -> FilterSpec:
    b = WorkBuilder()
    b.push(b.pop() * factor)
    return FilterSpec("gain", pop=1, push=1, work_body=b.build())


def main() -> None:
    program = Program("quickstart", pipeline(
        make_source(), make_lowpass(), make_downsample(), make_gain(2.0)))
    graph = flatten(program)

    # 1. Run the scalar program.
    scalar = execute(graph, machine=CORE_I7, iterations=4)
    print("scalar outputs :", [round(x, 4) for x in scalar.outputs[:8]])

    # 2. Macro-SIMDize and run again.
    compiled = compile_graph(graph, CORE_I7)
    print("\n--- compilation report ---")
    print(compiled.report.summary())

    simd = execute(compiled.graph, machine=CORE_I7, iterations=2)
    print("\nSIMD outputs   :", [round(x, 4) for x in simd.outputs[:8]])
    matches = min(len(scalar.outputs), len(simd.outputs))
    assert simd.outputs[:matches] == scalar.outputs[:matches]
    print(f"outputs identical for all {matches} compared items")

    # 3. Modeled speedup (cycles per produced sample).
    scalar_cpo = scalar.cycles_per_output(CORE_I7)
    simd_cpo = simd.cycles_per_output(CORE_I7)
    print(f"\nscalar : {scalar_cpo:8.1f} cycles/output")
    print(f"MacroSS: {simd_cpo:8.1f} cycles/output  "
          f"({scalar_cpo / simd_cpo:.2f}x speedup)")

    # 4. A taste of the generated C++.
    cpp = emit_cpp(compiled.graph, CORE_I7)
    print("\n--- generated C++ (first 25 lines) ---")
    print("\n".join(cpp.splitlines()[:25]))


if __name__ == "__main__":
    main()
