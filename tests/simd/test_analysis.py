"""Tests for SIMDizability analysis (§3.1's exclusion rules)."""

from repro.graph import FilterSpec, StateVar
from repro.ir import FLOAT, ArrayHandle, WorkBuilder, call
from repro.simd import analyze_filter, is_stateful
from repro.simd.analysis import tainted_vars, written_state_vars
from repro.simd.machine import CORE_I7, NEON_LIKE
from repro.simd.segments import horizontal_verdict


def _stateless_spec():
    b = WorkBuilder()
    b.push(b.pop() * 2.0)
    return FilterSpec("ok", pop=1, push=1, work_body=b.build())


def _stateful_spec():
    b = WorkBuilder()
    acc = b.var("acc")
    b.set(acc, acc + b.pop())
    b.push(acc)
    return FilterSpec("st", pop=1, push=1,
                      state=(StateVar("acc", FLOAT, 0, 0.0),),
                      work_body=b.build())


class TestStatefulness:
    def test_stateless(self):
        assert not is_stateful(_stateless_spec())

    def test_state_write_detected(self):
        spec = _stateful_spec()
        assert is_stateful(spec)
        assert written_state_vars(spec) == {"acc"}

    def test_read_only_state_is_not_stateful(self):
        """Coefficient tables filled in init do not block SIMDization."""
        b = WorkBuilder()
        coeff = ArrayHandle("coeff")
        b.push(b.pop() * coeff[0])
        spec = FilterSpec("ro", pop=1, push=1,
                          state=(StateVar("coeff", FLOAT, 4, 1.0),),
                          work_body=b.build())
        assert not is_stateful(spec)
        assert analyze_filter(spec, CORE_I7).simdizable

    def test_init_writes_do_not_count(self):
        init = WorkBuilder()
        init.set(ArrayHandle("coeff")[0], 2.0)
        b = WorkBuilder()
        b.push(b.pop() * ArrayHandle("coeff")[0])
        spec = FilterSpec("iw", pop=1, push=1,
                          state=(StateVar("coeff", FLOAT, 4, 0.0),),
                          init_body=init.build(), work_body=b.build())
        assert not is_stateful(spec)


class TestVerdicts:
    def test_stateless_actor_accepted(self):
        assert analyze_filter(_stateless_spec(), CORE_I7).simdizable

    def test_stateful_rejected(self):
        verdict = analyze_filter(_stateful_spec(), CORE_I7)
        assert not verdict.simdizable
        assert any("stateful" in r for r in verdict.reasons)

    def test_source_rejected(self):
        spec = FilterSpec("src", pop=0, push=1)
        assert not analyze_filter(spec, CORE_I7).simdizable

    def test_unsupported_call_rejected(self):
        b = WorkBuilder()
        b.push(call("atan2", b.pop(), 1.0))
        spec = FilterSpec("at", pop=1, push=1, work_body=b.build())
        verdict = analyze_filter(spec, CORE_I7)
        assert not verdict.simdizable
        assert any("atan2" in r for r in verdict.reasons)

    def test_machine_dependent_call_support(self):
        """sin vectorizes on SSE (SVML) but not on the Neon-like target."""
        b = WorkBuilder()
        b.push(call("sin", b.pop()))
        spec = FilterSpec("s", pop=1, push=1, work_body=b.build())
        assert analyze_filter(spec, CORE_I7).simdizable
        assert not analyze_filter(spec, NEON_LIKE).simdizable

    def test_tape_dependent_branch_rejected(self):
        b = WorkBuilder()
        x = b.let("x", b.pop())
        with b.if_(x.gt(0.0)):
            b.push(x)
        with b.orelse():
            b.push(-x)
        spec = FilterSpec("br", pop=1, push=1, work_body=b.build())
        verdict = analyze_filter(spec, CORE_I7)
        assert not verdict.simdizable
        assert any("control" in r or "if" in r for r in verdict.reasons)

    def test_tape_dependent_subscript_rejected(self):
        b = WorkBuilder()
        a = b.array("a", FLOAT, 8)
        idx = b.let("idx", call("int", b.pop()))
        b.push(a[idx])
        spec = FilterSpec("ix", pop=1, push=1, work_body=b.build())
        assert not analyze_filter(spec, CORE_I7).simdizable

    def test_untainted_branch_allowed(self):
        b = WorkBuilder()
        k = b.let("k", 3)
        with b.if_(k.gt(0)):
            b.push(b.pop())
        with b.orelse():
            b.push(b.pop())
        spec = FilterSpec("cb", pop=1, push=1, work_body=b.build())
        assert analyze_filter(spec, CORE_I7).simdizable

    def test_loop_index_subscript_allowed(self):
        b = WorkBuilder()
        a = b.array("a", FLOAT, 4)
        with b.loop("i", 0, 4) as i:
            b.set(a[i], b.pop())
        with b.loop("i", 0, 4) as i:
            b.push(a[i])
        spec = FilterSpec("ok", pop=4, push=4, work_body=b.build())
        assert analyze_filter(spec, CORE_I7).simdizable


class TestTaint:
    def test_taint_propagates_through_assignments(self):
        b = WorkBuilder()
        x = b.let("x", b.pop())
        y = b.let("y", x * 2.0)
        z = b.let("z", y + 1.0)
        b.push(z)
        assert tainted_vars(b.build()) == {"x", "y", "z"}

    def test_untainted_vars_stay_clean(self):
        b = WorkBuilder()
        k = b.let("k", 5)
        x = b.let("x", b.pop())
        b.push(x * k)
        assert tainted_vars(b.build()) == {"x"}

    def test_array_taint(self):
        b = WorkBuilder()
        a = b.array("a", FLOAT, 2)
        b.set(a[0], b.pop())
        derived = b.let("d", a[1])
        b.push(derived)
        assert "a" in tainted_vars(b.build())
        assert "d" in tainted_vars(b.build())


class TestHorizontalVerdict:
    def test_stateful_allowed(self):
        assert horizontal_verdict(_stateful_spec(), CORE_I7).simdizable

    def test_other_restrictions_stand(self):
        b = WorkBuilder()
        b.push(call("atan2", b.pop(), 1.0))
        spec = FilterSpec("at", pop=1, push=1, work_body=b.build())
        assert not horizontal_verdict(spec, CORE_I7).simdizable
