"""Target registry: lookup, aliases, errors, registration rules."""

import pytest

from repro.simd.machine import (
    CORE_I7,
    CORE_I7_SAGU,
    NEON_LIKE,
    SVE_LIKE,
    MachineDescription,
    UnknownTargetError,
    _TARGET_ALIASES,
    _TARGETS,
    get_target,
    list_targets,
    register_target,
    target_aliases,
)


class TestLookup:
    def test_canonical_names_resolve(self):
        assert get_target("core-i7-sse4") is CORE_I7
        assert get_target("core-i7-sse4+sagu") is CORE_I7_SAGU
        assert get_target("neon-like") is NEON_LIKE
        assert get_target("sve-like") is SVE_LIKE

    def test_lookup_is_case_insensitive(self):
        assert get_target("Core-i7-SSE4") is CORE_I7
        assert get_target("SVE-LIKE") is SVE_LIKE

    def test_aliases_resolve(self):
        assert get_target("i7") is CORE_I7
        assert get_target("sse4") is CORE_I7
        assert get_target("sagu") is CORE_I7_SAGU
        assert get_target("neon") is NEON_LIKE
        assert get_target("sve") is SVE_LIKE

    def test_description_passes_through(self):
        custom = MachineDescription(name="unregistered",
                                    simd_width=4,
                                    prices=CORE_I7.prices)
        assert get_target(custom) is custom

    def test_list_targets_sorted_canonical(self):
        names = list_targets()
        assert names == sorted(names)
        assert "sve-like" in names
        assert "i7" not in names  # aliases are not canonical names

    def test_target_aliases(self):
        assert "i7" in target_aliases("core-i7-sse4")
        assert "sve" in target_aliases(SVE_LIKE)
        # the canonical name itself is excluded
        assert "sve-like" not in target_aliases("sve")


class TestErrors:
    def test_unknown_target_did_you_mean(self):
        with pytest.raises(UnknownTargetError) as exc:
            get_target("sve-lik")
        message = str(exc.value)
        assert "sve-lik" in message
        assert "did you mean" in message
        assert "sve" in message
        assert "core-i7-sse4" in message  # full listing

    def test_unknown_target_is_a_key_error(self):
        """Callers that catch KeyError keep working."""
        with pytest.raises(KeyError):
            get_target("not-a-target")

    def test_str_is_not_reprd(self):
        """KeyError.__str__ would repr() the message; ours must not."""
        try:
            get_target("nope")
        except UnknownTargetError as exc:
            assert not str(exc).startswith('"')


class TestRegistration:
    def _cleanup(self, name, aliases):
        _TARGETS.pop(name, None)
        for alias in aliases:
            _TARGET_ALIASES.pop(alias, None)
        _TARGET_ALIASES.pop(name, None)

    def test_register_and_resolve_new_target(self):
        name, aliases = "test-target-reg", ("ttr",)
        try:
            machine = register_target(
                MachineDescription(name=name, simd_width=4,
                                   prices=CORE_I7.prices),
                aliases=aliases)
            assert get_target("TEST-TARGET-REG") is machine
            assert get_target("ttr") is machine
            assert name in list_targets()
        finally:
            self._cleanup(name, aliases)

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_target(MachineDescription(name="sve-like",
                                               simd_width=4,
                                               prices=CORE_I7.prices))

    def test_alias_collision_rejected(self):
        name = "test-target-collide"
        try:
            with pytest.raises(ValueError, match="alias"):
                register_target(
                    MachineDescription(name=name, simd_width=4,
                                       prices=CORE_I7.prices),
                    aliases=("i7",))
        finally:
            self._cleanup(name, ("i7",) if
                          _TARGET_ALIASES.get("i7") == name else ())

    def test_overwrite_replaces(self):
        name = "test-target-ow"
        try:
            first = register_target(
                MachineDescription(name=name, simd_width=4,
                                   prices=CORE_I7.prices))
            second = register_target(
                MachineDescription(name=name, simd_width=8,
                                   prices=CORE_I7.prices),
                overwrite=True)
            assert get_target(name) is second
            assert get_target(name) is not first
        finally:
            self._cleanup(name, ())
