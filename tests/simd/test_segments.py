"""Tests for vectorizable segment identification."""

from repro.apps.running_example import build
from repro.graph import flatten
from repro.simd import (
    find_horizontal_candidates,
    find_vertical_segments,
    simdizable_filters,
)
from repro.simd.machine import CORE_I7

from ..conftest import (
    linear_program,
    make_accumulator,
    make_expander,
    make_pair_sum,
    make_ramp_source,
    make_scaler,
)


def _segments_by_name(graph, **kwargs):
    verdicts = simdizable_filters(graph, CORE_I7)
    segments = find_vertical_segments(graph, verdicts, **kwargs)
    return [[graph.actors[aid].name for aid in seg] for seg in segments]


class TestVerticalSegments:
    def test_maximal_chain(self):
        g = linear_program(make_ramp_source(2),
                           make_scaler(name="a"),
                           make_scaler(name="b"),
                           make_pair_sum())
        assert _segments_by_name(g) == [["a", "b", "pairsum"]]

    def test_stateful_actor_breaks_chain(self):
        g = linear_program(make_ramp_source(2),
                           make_scaler(name="a"),
                           make_accumulator(),
                           make_scaler(name="b"))
        assert _segments_by_name(g) == [["a"], ["b"]]

    def test_source_excluded(self):
        g = linear_program(make_ramp_source(2), make_scaler())
        names = [n for seg in _segments_by_name(g) for n in seg]
        assert "src" not in names

    def test_exclusion_set_respected(self):
        g = linear_program(make_ramp_source(2),
                           make_scaler(name="a"), make_scaler(name="b"))
        excluded = {g.actor_by_name("a").id}
        segs = _segments_by_name(g, exclude=excluded)
        assert segs == [["b"]]

    def test_same_group_constraint_breaks_chains(self):
        g = linear_program(make_ramp_source(2),
                           make_scaler(name="a"), make_scaler(name="b"))
        partition = {aid: 0 for aid in g.actors}
        partition[g.actor_by_name("b").id] = 1
        segs = _segments_by_name(g, same_group=partition)
        assert segs == [["a"], ["b"]]

    def test_running_example_segments(self):
        g = flatten(build())
        verdicts = simdizable_filters(g, CORE_I7)
        claimed = set()
        for cand in find_horizontal_candidates(g, CORE_I7):
            claimed |= cand.all_actor_ids()
        segs = find_vertical_segments(g, verdicts, exclude=claimed)
        names = [[g.actors[a].name for a in s] for s in segs]
        assert ["D", "E"] in names
        assert ["G"] in names


class TestHorizontalCandidates:
    def test_running_example_has_one_candidate(self):
        g = flatten(build())
        candidates = find_horizontal_candidates(g, CORE_I7)
        assert len(candidates) == 1
        cand = candidates[0]
        assert cand.width == 4
        assert cand.depth == 2
        level0 = {g.actors[a].name for a in cand.level(0)}
        assert level0 == {"B0", "B1", "B2", "B3"}

    def test_non_isomorphic_splitjoin_rejected(self):
        from repro.graph import (Program, pipeline, roundrobin_joiner,
                                 roundrobin_splitter, splitjoin)
        g = flatten(Program("mixed", pipeline(
            make_ramp_source(4),
            splitjoin(roundrobin_splitter([1, 1, 1, 1]),
                      [make_scaler(name="s0"), make_scaler(name="s1"),
                       make_expander(), make_scaler(name="s3")],
                      roundrobin_joiner([1, 2, 1, 1])),
            make_scaler(name="tail", pop=1),
        )))
        assert find_horizontal_candidates(g, CORE_I7) == []

    def test_width_below_simd_rejected(self):
        from repro.graph import (Program, pipeline, roundrobin_joiner,
                                 roundrobin_splitter, splitjoin)
        g = flatten(Program("narrow", pipeline(
            make_ramp_source(4),
            splitjoin(roundrobin_splitter([1, 1]),
                      [make_scaler(name="s0"), make_scaler(name="s1")],
                      roundrobin_joiner([1, 1])),
            make_pair_sum(),
        )))
        assert find_horizontal_candidates(g, CORE_I7) == []

    def test_uneven_splitter_weights_rejected(self):
        from repro.graph import (Program, pipeline, roundrobin_joiner,
                                 roundrobin_splitter, splitjoin)
        g = flatten(Program("uneven", pipeline(
            make_ramp_source(5),
            splitjoin(roundrobin_splitter([2, 1, 1, 1]),
                      [make_scaler(name=f"s{i}") for i in range(4)],
                      roundrobin_joiner([2, 1, 1, 1])),
            make_scaler(name="tail", pop=1),
        )))
        assert find_horizontal_candidates(g, CORE_I7) == []
