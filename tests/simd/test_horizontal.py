"""Tests for horizontal SIMDization (§3.3, Figure 6)."""

import pytest

from repro.graph import (
    FilterSpec,
    Program,
    StateVar,
    duplicate_splitter,
    flatten,
    pipeline,
    roundrobin_joiner,
    roundrobin_splitter,
    splitjoin,
    validate,
)
from repro.graph.builtins import HJoinerSpec, HSplitterSpec
from repro.ir import FLOAT, INT, ArrayHandle, WorkBuilder
from repro.ir import expr as E
from repro.ir import stmt as S
from repro.ir.types import Vector
from repro.ir.visitors import iter_all_exprs, iter_stmts
from repro.runtime import execute
from repro.simd import MergeConflict, merge_specs
from repro.simd.machine import CORE_I7
from repro.simd.pipeline import compile_graph
from repro.simd.segments import find_horizontal_candidates

from ..conftest import make_ramp_source

SW = 4


def make_figure6_b(divisor: float, name: str) -> FilterSpec:
    """Figure 6a's B actor."""
    b = WorkBuilder()
    with b.loop("i", 0, 3):
        a0 = b.let("a0", b.pop())
        a1 = b.let("a1", b.pop())
        a2 = b.let("a2", b.pop())
        a3 = b.let("a3", b.pop())
        b.push((a0 * a1 + a2 * a3) / divisor)
    return FilterSpec(name, pop=12, push=3, work_body=b.build())


def make_figure6_c(name: str) -> FilterSpec:
    """Figure 6a's stateful C actor (repaired delay line)."""
    b = WorkBuilder()
    ph = b.var("ph")
    state = ArrayHandle("state")
    b.push(state[ph])
    b.set(state[ph], b.pop())
    b.set(ph, (ph + 1) % 8)
    return FilterSpec(name, pop=1, push=1,
                      state=(StateVar("state", FLOAT, 8, 0.0),
                             StateVar("ph", INT, 0, 0)),
                      work_body=b.build())


class TestMergeSpecs:
    def test_constant_divergence_becomes_vector_const(self):
        """Figure 6b's {5, 6, 7, 8} constant vector."""
        merged = merge_specs([make_figure6_b(float(d), f"B{d}")
                              for d in (5, 6, 7, 8)], SW)
        consts = [e for e in iter_all_exprs(merged.work_body)
                  if isinstance(e, E.VectorConst)]
        assert consts == [E.VectorConst((5.0, 6.0, 7.0, 8.0))]

    def test_tape_ops_become_vector(self):
        merged = merge_specs([make_figure6_b(float(d), f"B{d}")
                              for d in (5, 6, 7, 8)], SW)
        assert any(isinstance(e, E.VPop)
                   for e in iter_all_exprs(merged.work_body))
        assert any(isinstance(s, S.VPush)
                   for s in iter_stmts(merged.work_body))
        assert not any(isinstance(e, E.Pop)
                       for e in iter_all_exprs(merged.work_body))

    def test_rates_unchanged_in_vector_items(self):
        merged = merge_specs([make_figure6_b(float(d), f"B{d}")
                              for d in (5, 6, 7, 8)], SW)
        assert merged.pop == 12
        assert merged.push == 3

    def test_stateful_actors_merge(self):
        """Figure 6b: state array becomes a vector array, the scalar index
        variable (place_holder) stays scalar."""
        merged = merge_specs([make_figure6_c(f"C{i}") for i in range(SW)], SW)
        state = {v.name: v for v in merged.state}
        assert isinstance(state["state"].type, Vector)
        assert state["ph"].type == INT  # lane-invariant, stays scalar

    def test_divergent_state_init_forces_vector(self):
        def gainer(g, name):
            b = WorkBuilder()
            b.push(b.pop() * b.var("g"))
            return FilterSpec(name, pop=1, push=1,
                              state=(StateVar("g", FLOAT, 0, g),),
                              work_body=b.build())
        merged = merge_specs([gainer(float(i), f"G{i}")
                              for i in range(SW)], SW)
        (gvar,) = merged.state
        assert isinstance(gvar.type, Vector)
        assert gvar.init == (0.0, 1.0, 2.0, 3.0)

    def test_divergent_loop_bound_rejected(self):
        def looper(n, name):
            b = WorkBuilder()
            acc = b.let("acc", 0.0)
            with b.loop("i", 0, 4):
                b.set(acc, acc + b.pop())
            with b.loop("j", 0, n):
                b.set(acc, acc * 2.0)
            b.push(acc)
            return FilterSpec(name, pop=4, push=1, work_body=b.build())
        with pytest.raises(MergeConflict):
            merge_specs([looper(n, f"L{n}") for n in (1, 2, 3, 4)], SW)

    def test_structural_divergence_rejected(self):
        plus = make_figure6_b(5.0, "B0")
        b = WorkBuilder()
        with b.loop("i", 0, 12):
            b.stmt(b.pop())
        b.push(1.0)
        b.push(2.0)
        b.push(3.0)
        other = FilterSpec("B1", pop=12, push=3, work_body=b.build())
        with pytest.raises(MergeConflict):
            merge_specs([plus, other, plus, plus], SW)

    def test_wrong_width_rejected(self):
        with pytest.raises(MergeConflict):
            merge_specs([make_figure6_b(5.0, "B")] * 3, SW)

    def test_divergent_array_inits_become_vector_arrays(self):
        def fir(coeffs, name):
            b = WorkBuilder()
            c = b.array("c", FLOAT, 2, init=coeffs)
            b.push(b.pop() * c[0] + b.pop() * c[1])
            return FilterSpec(name, pop=2, push=1, work_body=b.build())
        merged = merge_specs(
            [fir((1.0 * i, 2.0 * i), f"F{i}") for i in range(SW)], SW)
        decl = next(s for s in iter_stmts(merged.work_body)
                    if isinstance(s, S.DeclArray))
        assert isinstance(decl.elem_type, Vector)


def _figure6_program():
    branches = [pipeline(make_figure6_b(float(5 + i), f"B{i}"),
                         make_figure6_c(f"C{i}"))
                for i in range(SW)]
    return Program("fig6", pipeline(
        make_ramp_source(8, name="src"),
        splitjoin(roundrobin_splitter([4] * SW), branches,
                  roundrobin_joiner([1] * SW)),
        _collector(),
    ))


def _collector():
    b = WorkBuilder()
    with b.loop("i", 0, 4):
        b.push(b.pop())
    return FilterSpec("tail", pop=4, push=4, work_body=b.build())


class TestGraphTransformation:
    def test_candidate_found(self):
        g = flatten(_figure6_program())
        candidates = find_horizontal_candidates(g, CORE_I7)
        assert len(candidates) == 1
        assert candidates[0].width == SW
        assert candidates[0].depth == 2

    def test_splitjoin_replaced_by_h_variants(self):
        g = flatten(_figure6_program())
        compiled = compile_graph(g, CORE_I7).graph
        validate(compiled)
        specs = [a.spec for a in compiled.actors.values()]
        assert any(isinstance(s, HSplitterSpec) for s in specs)
        assert any(isinstance(s, HJoinerSpec) for s in specs)
        assert sum(isinstance(s, FilterSpec) and s.name.endswith("_h")
                   for s in specs) == 2

    def test_vector_tapes_created(self):
        g = flatten(_figure6_program())
        compiled = compile_graph(g, CORE_I7).graph
        assert any(t.is_vector for t in compiled.tapes.values())

    def test_functional_equivalence(self):
        g = flatten(_figure6_program())
        baseline = execute(g, iterations=4).outputs
        compiled = compile_graph(g, CORE_I7).graph
        horizontal = execute(compiled, iterations=4).outputs
        n = min(len(baseline), len(horizontal))
        assert n > 0
        assert horizontal[:n] == baseline[:n]

    def test_repetitions_not_scaled(self):
        """§3.3: horizontal SIMDization does not change the latency (no
        Equation (1) rescaling of the merged actors)."""
        from repro.schedule import repetition_vector
        from repro.simd import MacroSSOptions
        g = flatten(_figure6_program())
        scalar_reps = repetition_vector(g)
        b0_rep = scalar_reps[g.actor_by_name("B0").id]
        horizontal_only = MacroSSOptions(single_actor=False, vertical=False)
        compiled = compile_graph(g, CORE_I7, horizontal_only).graph
        reps = repetition_vector(compiled)
        merged = compiled.actor_by_name("B_h")
        assert reps[merged.id] == b0_rep

    def test_tape_access_reduction(self):
        """Figure 6 arithmetic: B pops drop by a factor of SW."""
        g = flatten(_figure6_program())
        scalar = execute(g, iterations=1)
        scalar_loads = sum(
            scalar.steady_counters.by_actor[g.actor_by_name(f"B{i}").id]
            ["s_load"] for i in range(SW))
        from repro.simd import MacroSSOptions
        horizontal_only = MacroSSOptions(single_actor=False, vertical=False)
        compiled = compile_graph(g, CORE_I7, horizontal_only).graph
        horizontal = execute(compiled, iterations=1)
        merged = compiled.actor_by_name("B_h")
        vloads = horizontal.steady_counters.by_actor[merged.id]["v_load"]
        assert vloads * SW == scalar_loads


class TestGroupedWidths:
    def test_eight_branches_make_two_simd_actors(self):
        branches = [pipeline(make_figure6_b(float(i + 1), f"B{i}"))
                    for i in range(8)]
        program = Program("wide", pipeline(
            make_ramp_source(8, name="src"),
            splitjoin(roundrobin_splitter([4] * 8), branches,
                      roundrobin_joiner([1] * 8)),
            _collector(),
        ))
        g = flatten(program)
        baseline = execute(g, iterations=4).outputs
        compiled = compile_graph(g, CORE_I7).graph
        validate(compiled)
        merged = [a for a in compiled.actors.values()
                  if isinstance(a.spec, FilterSpec)
                  and a.spec.name.endswith("_h")]
        assert len(merged) == 2
        out = execute(compiled, iterations=4).outputs
        n = min(len(baseline), len(out))
        assert out[:n] == baseline[:n]
