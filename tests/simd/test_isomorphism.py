"""Tests for actor-level isomorphism detection."""

from repro.graph import FilterSpec, StateVar
from repro.ir import FLOAT, WorkBuilder
from repro.simd import all_isomorphic, spec_signature, specs_isomorphic


def _actor(gain: float, pop: int = 2, name: str = "a",
           state_init: float = 0.0) -> FilterSpec:
    b = WorkBuilder()
    acc = b.let("acc", 0.0)
    with b.loop("i", 0, pop):
        b.set(acc, acc + b.pop() * gain)
    b.push(acc)
    return FilterSpec(name, pop=pop, push=1,
                      state=(StateVar("s", FLOAT, 0, state_init),),
                      work_body=b.build())


class TestSpecsIsomorphic:
    def test_identical(self):
        assert specs_isomorphic(_actor(1.0), _actor(1.0))

    def test_constants_may_differ(self):
        assert specs_isomorphic(_actor(1.0), _actor(2.0))

    def test_state_inits_may_differ(self):
        assert specs_isomorphic(_actor(1.0, state_init=0.0),
                                _actor(1.0, state_init=9.0))

    def test_names_may_differ(self):
        assert specs_isomorphic(_actor(1.0, name="x"), _actor(1.0, name="y"))

    def test_rates_must_match(self):
        assert not specs_isomorphic(_actor(1.0, pop=2), _actor(1.0, pop=4))

    def test_state_structure_must_match(self):
        plain = _actor(1.0)
        b = WorkBuilder()
        acc = b.let("acc", 0.0)
        with b.loop("i", 0, 2):
            b.set(acc, acc + b.pop() * 1.0)
        b.push(acc)
        no_state = FilterSpec("a", pop=2, push=1, work_body=b.build())
        assert not specs_isomorphic(plain, no_state)

    def test_all_isomorphic(self):
        assert all_isomorphic([_actor(float(i)) for i in range(4)])
        assert not all_isomorphic([_actor(1.0), _actor(1.0, pop=4)])
        assert not all_isomorphic([])

    def test_signature_is_hashable(self):
        assert hash(spec_signature(_actor(1.0))) == hash(
            spec_signature(_actor(5.0)))
