"""Tests for retargeting: the Neon-like machine (no vector transcendentals).

The paper's motivation for graph-level SIMDization includes retargetability
across SIMD standards; MacroSS must make *different* decisions per target.
"""

import pytest

from repro.experiments.harness import Variants, scalar_graph
from repro.runtime import execute
from repro.simd import compile_graph
from repro.simd.machine import CORE_I7, NEON_LIKE


class TestRetargeting:
    def test_math_heavy_actors_scalar_on_neon(self):
        """FMRadio's demodulator chain uses sin/cos-free code but the
        running example's E actor calls sin/cos: vectorizable on SSE
        (SVML), not on the Neon-like target."""
        g = scalar_graph("RunningExample")
        sse = compile_graph(g, CORE_I7).report
        neon = compile_graph(g, NEON_LIKE).report
        assert sse.decisions["E"].startswith("vertical")
        assert neon.decisions["E"].startswith("scalar:")
        assert "SIMD support" in neon.decisions["E"]

    def test_neon_compilation_still_correct(self):
        g = scalar_graph("RunningExample")
        baseline = execute(g, iterations=4).outputs
        compiled = compile_graph(g, NEON_LIKE)
        outputs = execute(compiled.graph, machine=NEON_LIKE,
                          iterations=2).outputs
        n = min(len(baseline), len(outputs))
        assert outputs[:n] == baseline[:n]

    def test_neon_gains_smaller_on_math_heavy_apps(self):
        """MP3Decoder is pow/transcendental heavy: SSE+SVML vectorizes it,
        the Neon-like machine cannot."""
        sse = Variants("MP3Decoder", CORE_I7)
        neon = Variants("MP3Decoder", NEON_LIKE)
        sse_speedup = sse.baseline_cpo() / sse.macro_cpo()
        neon_speedup = neon.baseline_cpo() / neon.macro_cpo()
        assert neon_speedup < sse_speedup

    def test_integer_app_unaffected_by_missing_svml(self):
        """DES is pure integer/bitwise: both targets vectorize it."""
        sse = Variants("DES", CORE_I7)
        neon = Variants("DES", NEON_LIKE)
        sse_speedup = sse.baseline_cpo() / sse.macro_cpo()
        neon_speedup = neon.baseline_cpo() / neon.macro_cpo()
        assert neon_speedup == pytest.approx(sse_speedup, rel=0.2)
