"""Tests for the vertical-vs-horizontal cost-model arbitration (§3.5)."""

import pytest

from repro.apps.running_example import build
from repro.graph import (
    FilterSpec,
    Program,
    flatten,
    pipeline,
    roundrobin_joiner,
    roundrobin_splitter,
    splitjoin,
)
from repro.ir import WorkBuilder
from repro.runtime import execute
from repro.schedule import repetition_vector
from repro.simd import compile_graph
from repro.simd.machine import CORE_I7
from repro.simd.segments import find_horizontal_candidates
from repro.simd.technique_choice import (
    horizontal_cost,
    prefer_horizontal,
    vertical_cost,
)

from ..conftest import make_ramp_source


def _gain(value: float, name: str) -> FilterSpec:
    b = WorkBuilder()
    b.push(b.pop() * value)
    return FilterSpec(name, pop=1, push=1, work_body=b.build())


def _deep_chain_graph(depth: int):
    """Width-4 split-join of depth-N trivial isomorphic gain chains."""
    branches = [
        pipeline(*[_gain(1.0 + branch, f"g{branch}_{level}")
                   for level in range(depth)])
        for branch in range(4)
    ]
    tail = _gain(1.0, "tail")
    return flatten(Program("deep", pipeline(
        make_ramp_source(4),
        splitjoin(roundrobin_splitter([1, 1, 1, 1]), branches,
                  roundrobin_joiner([1, 1, 1, 1])),
        tail,
    )))


class TestArbitration:
    def test_stateful_levels_force_horizontal(self):
        g = flatten(build())
        (candidate,) = find_horizontal_candidates(g, CORE_I7)
        reps = repetition_vector(g)
        # C actors are stateful: horizontal without a cost comparison.
        assert prefer_horizontal(g, candidate, reps, CORE_I7)

    def test_shallow_stateless_splitjoin_prefers_horizontal(self):
        g = _deep_chain_graph(depth=2)
        (candidate,) = find_horizontal_candidates(g, CORE_I7)
        reps = repetition_vector(g)
        assert prefer_horizontal(g, candidate, reps, CORE_I7)

    def test_deep_trivial_chains_prefer_vertical(self):
        """Twelve trivial stages: the per-level tape traffic and firing
        overhead of twelve separate SIMD actors exceeds one fused coarse
        actor per branch."""
        g = _deep_chain_graph(depth=12)
        (candidate,) = find_horizontal_candidates(g, CORE_I7)
        reps = repetition_vector(g)
        assert not prefer_horizontal(g, candidate, reps, CORE_I7)

    def test_cost_functions_positive_and_ordered(self):
        g = _deep_chain_graph(depth=12)
        (candidate,) = find_horizontal_candidates(g, CORE_I7)
        reps = repetition_vector(g)
        ch = horizontal_cost(g, candidate, reps, CORE_I7)
        cv = vertical_cost(g, candidate, reps, CORE_I7)
        assert 0 < cv < ch


class TestEndToEnd:
    def test_vertical_choice_recorded_and_correct(self):
        g = _deep_chain_graph(depth=12)
        baseline = execute(g, iterations=4).outputs
        compiled = compile_graph(g, CORE_I7)
        assert any("cost model chose vertical" in s
                   for s in compiled.report.skipped_horizontal)
        assert compiled.report.vertical_segments  # branches fused instead
        outputs = execute(compiled.graph, machine=CORE_I7,
                          iterations=1).outputs
        n = min(len(baseline), len(outputs))
        assert outputs[:n] == baseline[:n]

    def test_horizontal_choice_on_running_example_unchanged(self):
        g = flatten(build())
        compiled = compile_graph(g, CORE_I7)
        assert compiled.report.decisions["B0"] == "horizontal"
        assert not compiled.report.skipped_horizontal
