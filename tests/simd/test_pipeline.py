"""End-to-end MacroSS driver tests, pinned to the paper's running example
(Figures 2a -> 2b)."""

import pytest

from repro.apps.running_example import build
from repro.graph import flatten, validate
from repro.runtime import execute
from repro.simd import (
    SCALAR_OPTIONS,
    SINGLE_ACTOR_ONLY,
    MacroSSOptions,
    compile_graph,
)
from repro.simd.machine import CORE_I7


@pytest.fixture(scope="module")
def scalar_graph():
    return flatten(build())


@pytest.fixture(scope="module")
def compiled(scalar_graph):
    return compile_graph(scalar_graph, CORE_I7)


class TestFigure2Decisions:
    def test_horizontal_on_b_and_c(self, compiled):
        for name in [f"B{i}" for i in range(4)] + [f"C{i}" for i in range(4)]:
            assert compiled.report.decisions[name] == "horizontal"

    def test_vertical_fusion_of_d_and_e(self, compiled):
        assert compiled.report.decisions["D"] == "vertical:3D_2E"
        assert compiled.report.decisions["E"] == "vertical:3D_2E"

    def test_coarse_actor_rates_match_figure_4(self, compiled):
        coarse = compiled.graph.actor_by_name("3D_2E")
        assert coarse.spec.pop == 6 * 4   # x SW after vectorization
        assert coarse.spec.push == 8 * 4

    def test_single_actor_on_g(self, compiled):
        assert compiled.report.decisions["G"] == "single"

    def test_stateful_actors_stay_scalar(self, compiled):
        for name in ("A", "F", "H"):
            assert compiled.report.decisions[name].startswith("scalar:")
            assert "stateful" in compiled.report.decisions[name]

    def test_equation1_scaling_factor_is_two(self, compiled):
        """§3.1: 'the repetition numbers of the graph in Figure 2a must be
        scaled by 2 (= M)'."""
        assert compiled.report.scaling_factor == 2

    def test_hsplitter_hjoiner_present(self, compiled):
        names = {a.name for a in compiled.graph.actors.values()}
        assert any(n.startswith("hsplitter") for n in names)
        assert any(n.startswith("hjoiner") for n in names)

    def test_compiled_graph_validates(self, compiled):
        validate(compiled.graph)

    def test_report_summary_mentions_everything(self, compiled):
        text = compiled.report.summary()
        assert "M = 2" in text
        assert "3D_2E" in text


class TestEquivalence:
    def test_outputs_bit_identical(self, scalar_graph, compiled):
        baseline = execute(scalar_graph, iterations=4).outputs
        simdized = execute(compiled.graph, machine=CORE_I7,
                           iterations=2).outputs
        n = min(len(baseline), len(simdized))
        assert n > 0
        assert simdized[:n] == baseline[:n]

    def test_speedup_positive(self, scalar_graph, compiled):
        scalar_cpo = execute(scalar_graph,
                             iterations=2).cycles_per_output(CORE_I7)
        simd_cpo = execute(compiled.graph, machine=CORE_I7,
                           iterations=2).cycles_per_output(CORE_I7)
        assert scalar_cpo / simd_cpo > 1.1


class TestOptionPresets:
    def test_scalar_options_change_nothing(self, scalar_graph):
        compiled = compile_graph(scalar_graph, CORE_I7, SCALAR_OPTIONS)
        assert not compiled.report.vertical_segments
        assert not compiled.report.horizontal_splitjoins
        baseline = execute(scalar_graph, iterations=2).outputs
        unchanged = execute(compiled.graph, iterations=2).outputs
        assert unchanged == baseline

    def test_single_actor_only_still_vectorizes(self, scalar_graph):
        compiled = compile_graph(scalar_graph, CORE_I7, SINGLE_ACTOR_ONLY)
        assert not compiled.report.vertical_segments
        assert compiled.report.decisions["D"] == "single"
        assert compiled.report.decisions["E"] == "single"

    def test_vertical_beats_single_actor_only(self, scalar_graph):
        full = compile_graph(scalar_graph, CORE_I7,
                             MacroSSOptions(tape_optimization=False))
        single = compile_graph(scalar_graph, CORE_I7,
                               MacroSSOptions(vertical=False,
                                              tape_optimization=False))
        full_cpo = execute(full.graph, machine=CORE_I7,
                           iterations=2).cycles_per_output(CORE_I7)
        single_cpo = execute(single.graph, machine=CORE_I7,
                             iterations=2).cycles_per_output(CORE_I7)
        assert full_cpo < single_cpo

    def test_compilation_is_non_destructive(self, scalar_graph):
        before = len(scalar_graph.actors)
        compile_graph(scalar_graph, CORE_I7)
        assert len(scalar_graph.actors) == before
        assert scalar_graph.actor_by_name("D")  # untouched


class TestPartitionConstrainedCompile:
    def test_partition_limits_fusion(self, scalar_graph):
        # Put D and E on different cores: the D-E fusion must not happen.
        partition = {aid: 0 for aid in scalar_graph.actors}
        partition[scalar_graph.actor_by_name("E").id] = 1
        compiled = compile_graph(scalar_graph, CORE_I7, partition=partition)
        assert compiled.report.decisions["D"] == "single"
        assert compiled.report.decisions["E"] == "single"

    def test_partition_limits_horizontal(self, scalar_graph):
        partition = {aid: 0 for aid in scalar_graph.actors}
        partition[scalar_graph.actor_by_name("B2").id] = 1
        compiled = compile_graph(scalar_graph, CORE_I7, partition=partition)
        assert compiled.report.decisions["B0"].startswith(("single", "scalar"))

    def test_core_assignment_covers_all_new_actors(self, scalar_graph):
        partition = {aid: aid % 2 for aid in scalar_graph.actors}
        compiled = compile_graph(scalar_graph, CORE_I7, partition=partition)
        assert set(compiled.core_assignment) == set(compiled.graph.actors)
