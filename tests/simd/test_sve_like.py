"""The SVE-like target: registry-only target addition, end to end.

The point of the target registry is that a new SIMD target is *data*: a
:class:`MachineDescription` plus one ``register_target`` call, zero driver
edits.  These tests prove that for the bundled ``sve-like`` target — it
compiles, executes on both backends with identical outputs, reaches code
generation, and widens through ``with_simd_width`` without name stacking.
"""

import pytest

from repro.codegen import emit_cpp
from repro.experiments.harness import scalar_graph
from repro.perf import events as ev
from repro.runtime import execute
from repro.simd import SVE_LIKE, compile_graph, get_target


class TestDescription:
    def test_registered(self):
        assert get_target("sve-like") is SVE_LIKE
        assert get_target("sve") is SVE_LIKE

    def test_vla_base_width(self):
        """Vector-length-agnostic: base description models VL=128 (4×f32);
        wider VLs derive via with_simd_width."""
        assert SVE_LIKE.simd_width == 4

    def test_alignment_insensitive_memory(self):
        """SVE-style loads/stores price unaligned like aligned."""
        assert SVE_LIKE.price(ev.VECTOR_LOAD_U) == \
            SVE_LIKE.price(ev.VECTOR_LOAD)
        assert SVE_LIKE.price(ev.VECTOR_STORE_U) == \
            SVE_LIKE.price(ev.VECTOR_STORE)

    def test_widening(self):
        wide = SVE_LIKE.with_simd_width(8)
        assert wide.simd_width == 8
        assert wide.name == "sve-like@sw8"
        wider = wide.with_simd_width(16)
        assert wider.name == "sve-like@sw16"  # no @sw8@sw16 stacking


@pytest.mark.parametrize("app", ["RunningExample", "DCT"])
class TestEndToEnd:
    def test_compiles_and_simdizes(self, app):
        compiled = compile_graph(scalar_graph(app), SVE_LIKE)
        assert compiled.report.machine == "sve-like"
        assert any(not d.startswith("scalar")
                   for d in compiled.report.decisions.values())

    def test_backends_agree(self, app):
        compiled = compile_graph(scalar_graph(app), SVE_LIKE)
        interp = execute(compiled.graph, machine=SVE_LIKE, iterations=2,
                         backend="interp")
        comp = execute(compiled.graph, machine=SVE_LIKE, iterations=2,
                       backend="compiled")
        assert comp.outputs == interp.outputs
        assert comp.init_outputs == interp.init_outputs

    def test_codegen(self, app):
        compiled = compile_graph(scalar_graph(app), SVE_LIKE)
        cpp = emit_cpp(compiled.graph, SVE_LIKE)
        assert "sve-like" in cpp


def test_matches_scalar_semantics():
    """SIMDized-for-sve output equals the scalar reference output (prefix
    comparison: Equation (1) rescales outputs-per-iteration by M)."""
    source = scalar_graph("RunningExample")
    scalar = execute(source, machine=SVE_LIKE, iterations=4)
    compiled = compile_graph(source, SVE_LIKE)
    simd = execute(compiled.graph, machine=SVE_LIKE, iterations=2)
    common = min(len(scalar.outputs), len(simd.outputs))
    assert common > 0
    assert simd.outputs[:common] == scalar.outputs[:common]
