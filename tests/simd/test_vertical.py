"""Tests for vertical SIMDization (§3.2, Figures 4 and 5)."""

import pytest

from repro.graph import FilterSpec, validate
from repro.ir import FLOAT, WorkBuilder, call
from repro.ir import expr as E
from repro.ir import stmt as S
from repro.ir.visitors import iter_all_exprs, iter_stmts
from repro.runtime import execute
from repro.schedule import repetition_vector
from repro.simd import FusionError, fuse_segment, fuse_specs, inner_repetitions
from repro.simd.single_actor import vectorize_actor

from ..conftest import linear_program, make_ramp_source


def make_d() -> FilterSpec:
    """Figure 3a's D (pop 2, push 2)."""
    b = WorkBuilder()
    t0 = b.let("t0", b.pop())
    t1 = b.let("t1", b.pop())
    b.push(t0 + t1)
    b.push(t0 - t1)
    return FilterSpec("D", pop=2, push=2, work_body=b.build())


def make_e() -> FilterSpec:
    """Figure 3a's E (pop 3, push 4)."""
    b = WorkBuilder()
    x0 = b.let("x0", b.pop())
    x1 = b.let("x1", b.pop())
    x2 = b.let("x2", b.pop())
    b.push(x1 * call("cos", x0) + x2)
    b.push(x0 * call("cos", x1) + x2)
    b.push(x1 * call("sin", x0) + x2)
    b.push(x0 * call("sin", x1) + x2)
    return FilterSpec("E", pop=3, push=4, work_body=b.build())


class TestInnerRepetitions:
    def test_paper_example(self):
        """D rep 12, E rep 8 -> inner (3, 2) (Figure 4)."""
        assert inner_repetitions([12, 8]) == [3, 2]

    def test_coprime(self):
        assert inner_repetitions([3, 2]) == [3, 2]

    def test_equal(self):
        assert inner_repetitions([4, 4]) == [1, 1]

    def test_triple(self):
        assert inner_repetitions([12, 8, 16]) == [3, 2, 4]


class TestFuseSpecs:
    def test_figure4_coarse_rates(self):
        """Fusing D (rep 6) and E (rep 4): pop 6, push 8 (Figure 4a)."""
        coarse = fuse_specs([make_d(), make_e()], [6, 4])
        assert coarse.pop == 6
        assert coarse.push == 8
        assert coarse.name == "3D_2E"

    def test_internal_buffer_communication(self):
        coarse = fuse_specs([make_d(), make_e()], [6, 4])
        pushes = [s for s in iter_stmts(coarse.work_body)
                  if isinstance(s, S.InternalPush)]
        pops = [e for e in iter_all_exprs(coarse.work_body)
                if isinstance(e, E.InternalPop)]
        assert pushes and pops
        assert {s.buf for s in pushes} == {0}
        assert {e.buf for e in pops} == {0}

    def test_variable_renaming_avoids_collisions(self):
        """Both actors declare x0-style locals; fusion must prefix them."""
        spec_a = make_e().with_name("E1")
        spec_b = make_e().with_name("E2")
        # rates: E1 push 4 feeds E2 pop 3 -> reps 3 and 4
        coarse = fuse_specs([spec_a, spec_b], [3, 4])
        names = {s.name for s in iter_stmts(coarse.work_body)
                 if isinstance(s, S.DeclVar)}
        assert "f0_x0" in names and "f1_x0" in names

    def test_peeking_inner_actor_rejected(self):
        b = WorkBuilder()
        b.push(b.peek(2))
        b.stmt(b.pop())
        peeker = FilterSpec("P", pop=1, push=1, peek=3, work_body=b.build())
        with pytest.raises(FusionError):
            fuse_specs([make_d(), peeker], [2, 4])

    def test_peeking_first_actor_allowed(self):
        b = WorkBuilder()
        b.push(b.peek(2))
        b.stmt(b.pop())
        peeker = FilterSpec("P", pop=1, push=1, peek=3, work_body=b.build())
        coarse = fuse_specs([peeker, make_d()], [2, 1])
        assert coarse.peek - coarse.pop == 2

    def test_single_actor_not_fusable(self):
        with pytest.raises(FusionError):
            fuse_specs([make_d()], [4])

    def test_read_only_state_carried_over(self):
        from repro.graph import StateVar
        from repro.ir import ArrayHandle
        b = WorkBuilder()
        b.push(b.pop() * ArrayHandle("k")[0])
        ro = FilterSpec("RO", pop=1, push=1,
                        state=(StateVar("k", FLOAT, 2, 2.0),),
                        work_body=b.build())
        coarse = fuse_specs([ro, make_d()], [2, 1])
        assert any(v.name == "f0_k" for v in coarse.state)


class TestFuseSegmentInGraph:
    def _graph(self):
        return linear_program(make_ramp_source(6), make_d(), make_e())

    def test_graph_rewiring(self):
        g = self._graph()
        reps = repetition_vector(g)
        d = g.actor_by_name("D").id
        e = g.actor_by_name("E").id
        coarse_id = fuse_segment(g, [d, e], reps)
        validate(g)
        assert d not in g.actors and e not in g.actors
        assert g.actors[coarse_id].spec.pop == 6

    def test_functional_equivalence_scalar_fusion(self):
        """Fusion alone (no vectorization) must preserve outputs exactly."""
        g1 = self._graph()
        baseline = execute(g1, iterations=3).outputs
        g2 = self._graph()
        reps = repetition_vector(g2)
        fuse_segment(g2, [g2.actor_by_name("D").id,
                          g2.actor_by_name("E").id], reps)
        fused = execute(g2, iterations=3).outputs
        assert fused == baseline

    def test_vectorized_coarse_actor_equivalence(self):
        """Figure 5: the fully SIMDized coarse actor computes the same
        stream, with vector internal buffers."""
        g1 = self._graph()
        baseline = execute(g1, iterations=4).outputs
        g2 = self._graph()
        reps = repetition_vector(g2)
        coarse_id = fuse_segment(g2, [g2.actor_by_name("D").id,
                                      g2.actor_by_name("E").id], reps)
        actor = g2.actors[coarse_id]
        actor.spec = vectorize_actor(actor.spec, 4)
        validate(g2)
        vectorized = execute(g2, iterations=1).outputs
        n = min(len(baseline), len(vectorized))
        assert n > 0
        assert vectorized[:n] == baseline[:n]

    def test_vectorization_eliminates_packing(self):
        """§3.2's headline: fused internal traffic has no pack/unpack."""
        g = self._graph()
        reps = repetition_vector(g)
        coarse_id = fuse_segment(g, [g.actor_by_name("D").id,
                                     g.actor_by_name("E").id], reps)
        actor = g.actors[coarse_id]
        actor.spec = vectorize_actor(actor.spec, 4)
        result = execute(g, iterations=1)
        counters = result.steady_counters.by_actor[coarse_id]
        # Packing happens only at the real tape boundaries (pop 24 items ->
        # 24 packs per firing; internal D->E traffic adds none).
        firings = result.schedule.reps[coarse_id]
        assert counters["pack"] == 24 * firings
