"""Direct tests for the static cost estimator's SIMD-specific branches."""

import math

import pytest

from repro.ir import expr as E
from repro.ir import stmt as S
from repro.perf import PerfCounters
from repro.runtime import ActorRuntime, Interpreter, Tape
from repro.simd.cost_model import (
    StrategyCost,
    estimate_body_events,
    gather_strategy_costs,
)
from repro.simd.machine import CORE_I7

SW = 4


class TestEstimatorSimdBranches:
    def test_gather_scalar_strategy_events(self):
        body = (S.ExprStmt(E.GatherPop(stride=2, strategy="scalar")),)
        events = estimate_body_events(body, SW)
        assert events["s_load"] == SW
        assert events["pack"] == SW

    def test_gather_permute_strategy_events(self):
        body = (S.ExprStmt(E.GatherPop(stride=8, strategy="permute")),)
        events = estimate_body_events(body, SW)
        assert events["v_load_u"] == 1
        assert events["permute"] == int(math.log2(8))

    def test_gather_sagu_strategy_events(self):
        body = (S.ExprStmt(E.GatherPop(stride=3, strategy="sagu")),)
        events = estimate_body_events(body, SW)
        assert events["v_load"] == 1
        assert events["pack"] == 0

    def test_scatter_strategies(self):
        vec = E.Broadcast(E.FloatConst(1.0), SW)
        scalar = estimate_body_events(
            (S.ScatterPush(vec, stride=2, strategy="scalar"),), SW)
        permute = estimate_body_events(
            (S.ScatterPush(vec, stride=4, strategy="permute"),), SW)
        assert scalar["unpack"] == SW and scalar["s_store"] == SW
        assert permute["v_store_u"] == 1 and permute["permute"] == 2

    def test_estimate_matches_interpreter_on_simdized_body(self):
        """The static estimator and the interpreter agree on a body using
        gathers, scatters, and vector ops."""
        body = (
            S.DeclVar("v", __import__("repro.ir.types",
                                      fromlist=["Vector", "FLOAT"]).Vector(
                __import__("repro.ir.types", fromlist=["FLOAT"]).FLOAT, SW),
                      E.GatherPop(stride=2, strategy="permute")),
            S.ScatterPush(E.Var("v") * E.Broadcast(E.FloatConst(2.0), SW),
                          stride=1, strategy="scalar"),
            S.AdvanceReader(7),
            S.AdvanceWriter(3),
        )
        static = estimate_body_events(body, SW)

        tape_in = Tape()
        for i in range(8):
            tape_in.push(float(i))
        rt = ActorRuntime(0, SW, PerfCounters(), {}, tape_in, Tape())
        Interpreter(rt).run_work(body)
        dynamic = rt.counters.events.copy()
        dynamic.pop("fire")
        assert dict(static.events) == dict(dynamic)


class TestStrategyCostObjects:
    def test_total_is_sum_of_sides(self):
        cost = StrategyCost("sagu", 2.0, 3.0)
        assert cost.total == 5.0

    def test_cost_dict_keys_by_machine_features(self):
        costs = gather_strategy_costs(4, CORE_I7, neighbour_is_scalar=True)
        assert set(costs) == {"scalar", "permute", "sagu"}
        costs = gather_strategy_costs(5, CORE_I7, neighbour_is_scalar=False)
        assert set(costs) == {"scalar"}

    def test_scalar_cost_scales_with_width(self):
        from repro.simd.machine import wide_machine
        narrow = gather_strategy_costs(2, CORE_I7,
                                       neighbour_is_scalar=False)["scalar"]
        wide = gather_strategy_costs(2, wide_machine(8),
                                     neighbour_is_scalar=False)["scalar"]
        assert wide.vector_side == pytest.approx(2 * narrow.vector_side)
