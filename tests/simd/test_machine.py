"""Tests for machine descriptions and the static cost estimator."""

import math

import pytest

from repro.ir import FLOAT, WorkBuilder, call
from repro.simd import estimate_body_events, estimate_firing_cycles
from repro.simd.machine import (
    CORE_I7,
    CORE_I7_SAGU,
    NEON_LIKE,
    UnsupportedOperation,
    wide_machine,
)


class TestMachineDescription:
    def test_core_i7_basics(self):
        assert CORE_I7.simd_width == 4
        assert not CORE_I7.has_sagu
        assert CORE_I7.has_extract_even_odd

    def test_sagu_variant(self):
        assert CORE_I7_SAGU.has_sagu
        assert CORE_I7_SAGU.simd_width == CORE_I7.simd_width
        assert "sagu" in CORE_I7_SAGU.name

    def test_with_sagu_idempotent_name(self):
        again = CORE_I7_SAGU.with_sagu()
        assert again.name == CORE_I7_SAGU.name

    def test_price_lookup(self):
        assert CORE_I7.price("s_alu") == 1.0
        assert CORE_I7.price("m_sin") > CORE_I7.price("m_abs")

    def test_unknown_event_raises(self):
        with pytest.raises(UnsupportedOperation):
            CORE_I7.price("bogus_event")

    def test_vector_call_support(self):
        assert CORE_I7.supports_vector_call("sin")
        assert not CORE_I7.supports_vector_call("atan2")
        assert not NEON_LIKE.supports_vector_call("sin")
        assert NEON_LIKE.supports_vector_call("sqrt")

    def test_with_simd_width_no_suffix_stacking(self):
        """Repeated widening rewrites the @sw suffix instead of stacking
        (regression: core-i7-sse4@sw8@sw16)."""
        once = CORE_I7.with_simd_width(8)
        assert once.name == "core-i7-sse4@sw8"
        assert once.simd_width == 8
        twice = once.with_simd_width(16)
        assert twice.name == "core-i7-sse4@sw16"
        assert "@sw8" not in twice.name
        assert twice.simd_width == 16
        # composes with +sagu without disturbing that suffix
        assert CORE_I7_SAGU.with_simd_width(8).name == \
            "core-i7-sse4+sagu@sw8"

    def test_wide_machine(self):
        wide = wide_machine(8)
        assert wide.simd_width == 8
        with pytest.raises(ValueError):
            wide_machine(6)

    def test_vector_math_cheaper_per_element(self):
        """SVML-style: one vector sin covers SW lanes for less than SW
        scalar sins."""
        assert CORE_I7.price("vm_sin") < 4 * CORE_I7.price("m_sin")


class TestStaticEstimator:
    def test_straight_line(self):
        b = WorkBuilder()
        b.push(b.pop() * 2.0)
        events = estimate_body_events(b.build(), 4)
        assert events["s_load"] == 1
        assert events["s_store"] == 1
        assert events["s_mul"] == 1

    def test_loops_multiply(self):
        b = WorkBuilder()
        with b.loop("i", 0, 10):
            b.push(b.pop())
        events = estimate_body_events(b.build(), 4)
        assert events["loop"] == 10
        assert events["s_load"] == 10

    def test_math_calls_counted(self):
        b = WorkBuilder()
        b.push(call("sin", b.pop()))
        events = estimate_body_events(b.build(), 4)
        assert events["m_sin"] == 1

    def test_estimate_matches_interpreter_for_simple_body(self):
        """For a straight-line stateless body, the static estimate equals
        the measured event counts (minus the firing event)."""
        from repro.perf import PerfCounters
        from repro.runtime import ActorRuntime, Interpreter, Tape
        b = WorkBuilder()
        with b.loop("i", 0, 4):
            b.push(b.pop() * 3.0 + 1.0)
        body = b.build()
        static = estimate_body_events(body, 4)

        tape_in = Tape()
        for i in range(4):
            tape_in.push(float(i))
        rt = ActorRuntime(0, 4, PerfCounters(), {}, tape_in, Tape())
        Interpreter(rt).run_work(body)
        dynamic = rt.counters.events.copy()
        dynamic.pop("fire")
        assert dict(static.events) == dict(dynamic)

    def test_firing_cycles_positive(self):
        from repro.graph import FilterSpec
        b = WorkBuilder()
        b.push(b.pop())
        spec = FilterSpec("f", pop=1, push=1, work_body=b.build())
        assert estimate_firing_cycles(spec, CORE_I7) > 0
