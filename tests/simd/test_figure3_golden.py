"""Golden test: the printed IR of the SIMDized Figure 3a actor pins the
shape the paper's Figure 3b shows.

The gather/scatter pseudo-ops are this IR's compact form of the figure's
strided access groups; the C++ emitter expands them back into the literal
peek/peek/peek/pop and rpush/rpush/rpush/push sequences, which the second
test pins.
"""

import textwrap

from repro.ir import format_body
from repro.simd import vectorize_actor
from repro.simd.machine import CORE_I7

from .test_single_actor import make_figure3_d

GOLDEN_IR = textwrap.dedent("""\
    vector<float, 4> tmp[2];
    float coeff[2] = {0.5, 1.5};
    for (i : 0 to 2) {
      vector<float, 4> t = gather_pop(stride=2, scalar);
      tmp[i] = t * coeff[i];
    }
    scatter_push(abs(tmp[0] + tmp[1]), stride=2, scalar);
    scatter_push(abs(tmp[0] - tmp[1]), stride=2, scalar);
    advance_reader(6);
    advance_writer(6);""")


def test_vectorized_d_matches_golden_ir():
    vec = vectorize_actor(make_figure3_d(), 4)
    assert format_body(vec.work_body) == GOLDEN_IR


def test_emitted_cpp_expands_figure3b_idioms():
    """Figure 3b, literally: lanes packed from strided peeks (lane 3 from
    offset 3*stride ... lane 0 from the pointer) and unpacked through
    strided rpushes followed by a committing push."""
    from repro.codegen import emit_cpp
    from repro.graph import FilterSpec, Program, flatten, pipeline
    from tests.conftest import make_ramp_source

    vec = vectorize_actor(make_figure3_d(), 4)
    graph = flatten(Program("fig3", pipeline(make_ramp_source(8), vec)))
    text = emit_cpp(graph, CORE_I7)

    # Read side: _mm_set_ps(peek(0+3*2), peek(0+2*2), peek(0+2), peek(0)).
    assert "_mm_set_ps(__in.peek(0 + 3 * 2), __in.peek(0 + 2 * 2), " \
           "__in.peek(0 + 2), __in.peek(0))" in text
    # Write side: rpush lanes 3..1 at offsets 6/4/2, then push lane 0.
    assert "__out.rpush(_lane(__sc1, 3), 6);" in text
    assert "__out.rpush(_lane(__sc1, 2), 4);" in text
    assert "__out.rpush(_lane(__sc1, 1), 2);" in text
    assert "__out.push(_lane(__sc1, 0));" in text
    # Pointer adjustments closing out the strided groups.
    assert "__in.advance_reader(6);" in text
    assert "__out.advance_writer(6);" in text
