"""Tests for the SAGU model (§3.4, Figures 8 and 9)."""

import pytest

from repro.simd.sagu import SAGU, lane_ordered_layout, software_address


class TestSoftwareAddress:
    def test_identity_when_push_count_one(self):
        """X = 1: lane-ordered layout equals scalar order."""
        for index in range(32):
            assert software_address(index, 1, 4) == index

    def test_transposition_within_block(self):
        """X = 2, SW = 4: item i = k*2 + j lives at j*4 + k."""
        expected = [0, 4, 1, 5, 2, 6, 3, 7]
        assert [software_address(i, 2, 4) for i in range(8)] == expected

    def test_block_offset(self):
        block = 2 * 4
        assert software_address(8, 2, 4) == block + 0
        assert software_address(9, 2, 4) == block + 4

    def test_base_address(self):
        assert software_address(0, 2, 4, base=100) == 100

    def test_addresses_are_a_permutation(self):
        block = 6 * 4
        addresses = {software_address(i, 6, 4) for i in range(block)}
        assert addresses == set(range(block))

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            software_address(0, 0, 4)


class TestHardwareModel:
    @pytest.mark.parametrize("push_count", [1, 2, 3, 4, 6, 8, 16])
    @pytest.mark.parametrize("simd_width", [2, 4, 8])
    def test_counters_match_software_sequence(self, push_count, simd_width):
        """Figure 9's counter datapath produces Figure 8's address stream."""
        sagu = SAGU(push_count, simd_width)
        count = push_count * simd_width * 3
        hardware = sagu.address_stream(count)
        software = [software_address(i, push_count, simd_width)
                    for i in range(count)]
        assert hardware == software

    def test_reset_opcode(self):
        sagu = SAGU(4, 4)
        sagu.address_stream(10)
        sagu.reset()
        assert sagu.next_address() == software_address(0, 4, 4)

    def test_base_address_applied(self):
        sagu = SAGU(2, 4, base_address=1000)
        assert sagu.next_address() == 1000

    def test_peek_does_not_advance(self):
        sagu = SAGU(2, 4)
        first = sagu.peek_address()
        assert sagu.peek_address() == first
        assert sagu.next_address() == first

    def test_invalid_parameters(self):
        with pytest.raises(ValueError):
            SAGU(0, 4)


class TestLaneOrderedLayout:
    def test_roundtrip_recovers_scalar_order(self):
        """A scalar consumer walking a lane-ordered tape through the SAGU
        reads the original stream."""
        push_count, sw = 6, 4
        items = [f"item{i}" for i in range(push_count * sw * 2)]
        layout = lane_ordered_layout(items, push_count, sw)
        sagu = SAGU(push_count, sw)
        recovered = [layout[sagu.next_address()] for _ in range(len(items))]
        assert recovered == items

    def test_layout_is_what_vector_pushes_produce(self):
        """Group j's vector occupies addresses j*SW..j*SW+3, lane k holding
        execution k's element — i.e. layout position j*SW+k = item k*X+j."""
        push_count, sw = 2, 4
        items = list(range(8))
        layout = lane_ordered_layout(items, push_count, sw)
        assert layout == [0, 2, 4, 6, 1, 3, 5, 7]

    def test_partial_block_rejected(self):
        with pytest.raises(ValueError):
            lane_ordered_layout([1, 2, 3], 2, 4)
