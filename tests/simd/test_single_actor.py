"""Tests for single-actor SIMDization (§3.1, Figure 3)."""

import pytest

from repro.graph import FilterSpec
from repro.ir import FLOAT, WorkBuilder, call
from repro.ir import expr as E
from repro.ir import stmt as S
from repro.ir.types import Vector
from repro.ir.visitors import iter_all_exprs, iter_stmts
from repro.perf import PerfCounters
from repro.runtime import ActorRuntime, Interpreter, Tape
from repro.simd import vectorize_actor

SW = 4


def make_figure3_d() -> FilterSpec:
    """Figure 3a's D actor (pop 2, push 2)."""
    b = WorkBuilder()
    tmp = b.array("tmp", FLOAT, 2)
    coeff = b.array("coeff", FLOAT, 2, init=(0.5, 1.5))
    with b.loop("i", 0, 2) as i:
        t = b.let("t", b.pop())
        b.set(tmp[i], t * coeff[i])
    b.push(call("abs", tmp[0] + tmp[1]))
    b.push(call("abs", tmp[0] - tmp[1]))
    return FilterSpec("D", pop=2, push=2, work_body=b.build())


def run_spec(spec: FilterSpec, inputs, firings=1, sw=SW):
    tape_in = Tape("in")
    for item in inputs:
        tape_in.push(item)
    tape_out = Tape("out")
    rt = ActorRuntime(0, sw, PerfCounters(), {}, tape_in, tape_out)
    interp = Interpreter(rt)
    for _ in range(firings):
        interp.run_work(spec.work_body)
    return tape_out.drain(), rt.counters


class TestRateTransformation:
    def test_rates_scaled_by_sw(self):
        vec = vectorize_actor(make_figure3_d(), SW)
        assert vec.pop == 8
        assert vec.push == 8
        assert vec.name == "D_v"

    def test_peek_rate_of_peeking_actor(self):
        b = WorkBuilder()
        b.push(b.peek(3))
        b.stmt(b.pop())
        b.stmt(b.pop())
        g = FilterSpec("G", pop=2, push=1, peek=4, work_body=b.build())
        vec = vectorize_actor(g, SW)
        # peek' = (SW-1)*pop + peek; residual delta stays peek - pop.
        assert vec.peek == 3 * 2 + 4
        assert vec.peek - vec.pop == g.peek - g.pop

    def test_width_validation(self):
        with pytest.raises(ValueError):
            vectorize_actor(make_figure3_d(), 1)


class TestBodyTransformation:
    def test_pops_become_strided_gathers(self):
        vec = vectorize_actor(make_figure3_d(), SW)
        gathers = [e for e in iter_all_exprs(vec.work_body)
                   if isinstance(e, E.GatherPop)]
        assert len(gathers) == 1  # the single pop inside the loop
        assert gathers[0].stride == 2  # the original pop rate

    def test_pushes_become_strided_scatters(self):
        vec = vectorize_actor(make_figure3_d(), SW)
        scatters = [s for s in iter_stmts(vec.work_body)
                    if isinstance(s, S.ScatterPush)]
        assert len(scatters) == 2
        assert all(s.stride == 2 for s in scatters)

    def test_trailing_advances(self):
        vec = vectorize_actor(make_figure3_d(), SW)
        assert vec.work_body[-2] == S.AdvanceReader((SW - 1) * 2)
        assert vec.work_body[-1] == S.AdvanceWriter((SW - 1) * 2)

    def test_tainted_declarations_retyped(self):
        vec = vectorize_actor(make_figure3_d(), SW)
        decls = {s.name: s for s in iter_stmts(vec.work_body)
                 if isinstance(s, (S.DeclVar, S.DeclArray))}
        assert isinstance(decls["t"].type, Vector)
        assert isinstance(decls["tmp"].elem_type, Vector)
        # read-only coefficients stay scalar (broadcast at use)
        assert decls["coeff"].elem_type == FLOAT

    def test_peeks_become_gather_peeks(self):
        b = WorkBuilder()
        with b.loop("i", 0, 3) as i:
            b.push(b.peek(i))
        b.stmt(b.pop())
        spec = FilterSpec("P", pop=1, push=3, peek=3, work_body=b.build())
        vec = vectorize_actor(spec, SW)
        peeks = [e for e in iter_all_exprs(vec.work_body)
                 if isinstance(e, E.GatherPeek)]
        assert len(peeks) == 1
        assert peeks[0].stride == 1  # pop rate

    def test_lane_invariant_push_broadcast(self):
        b = WorkBuilder()
        b.stmt(b.pop())
        b.push(1.0)
        spec = FilterSpec("C1", pop=1, push=1, work_body=b.build())
        vec = vectorize_actor(spec, SW)
        scatters = [s for s in iter_stmts(vec.work_body)
                    if isinstance(s, S.ScatterPush)]
        assert isinstance(scatters[0].value, E.Broadcast)


class TestSemanticEquivalence:
    """One vectorized firing == SW consecutive scalar firings."""

    def test_figure3_actor(self):
        scalar = make_figure3_d()
        vec = vectorize_actor(scalar, SW)
        inputs = [0.5 * i - 1.0 for i in range(8)]
        scalar_out, _ = run_spec(scalar, inputs, firings=SW)
        vector_out, _ = run_spec(vec, inputs, firings=1)
        assert vector_out == scalar_out

    def test_multiple_vector_firings(self):
        scalar = make_figure3_d()
        vec = vectorize_actor(scalar, SW)
        inputs = [0.1 * i for i in range(16)]
        scalar_out, _ = run_spec(scalar, inputs, firings=8)
        vector_out, _ = run_spec(vec, inputs, firings=2)
        assert vector_out == pytest.approx(scalar_out)

    def test_peeking_actor(self):
        b = WorkBuilder()
        b.push(b.peek(0) * 0.25 + b.peek(2))
        b.stmt(b.pop())
        b.stmt(b.pop())
        scalar = FilterSpec("G", pop=2, push=1, peek=3, work_body=b.build())
        vec = vectorize_actor(scalar, SW)
        inputs = [float(i) for i in range(12)]
        scalar_out, _ = run_spec(scalar, inputs, firings=SW)
        vector_out, _ = run_spec(vec, inputs, firings=1)
        assert vector_out == scalar_out

    def test_math_heavy_actor(self):
        b = WorkBuilder()
        x = b.let("x", b.pop())
        b.push(call("sin", x) * call("cos", x))
        scalar = FilterSpec("M", pop=1, push=1, work_body=b.build())
        vec = vectorize_actor(scalar, SW)
        inputs = [0.3 * i for i in range(4)]
        scalar_out, _ = run_spec(scalar, inputs, firings=SW)
        vector_out, _ = run_spec(vec, inputs, firings=1)
        assert vector_out == scalar_out

    def test_sink_actor(self):
        b = WorkBuilder()
        b.stmt(b.pop())
        scalar = FilterSpec("sink", pop=1, push=0, work_body=b.build())
        vec = vectorize_actor(scalar, SW)
        out, _ = run_spec(vec, [1.0] * 4, firings=1)
        assert out == []

    def test_vector_firing_uses_fewer_cycles(self):
        from repro.simd.machine import CORE_I7
        scalar = make_figure3_d()
        vec = vectorize_actor(scalar, SW)
        inputs = [0.5 * i for i in range(8)]
        _, scalar_counters = run_spec(scalar, inputs, firings=SW)
        _, vector_counters = run_spec(vec, inputs, firings=1)
        assert (vector_counters.cycles(CORE_I7)
                < scalar_counters.cycles(CORE_I7))
