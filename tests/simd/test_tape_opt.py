"""Tests for tape-access optimization (§3.4) and its cost model."""

import pytest

from repro.ir import expr as E
from repro.ir import stmt as S
from repro.ir.visitors import iter_all_exprs, iter_stmts
from repro.runtime import execute
from repro.simd import (
    best_gather_strategy,
    compile_graph,
    gather_strategy_costs,
    optimize_tapes,
)
from repro.simd.machine import CORE_I7, CORE_I7_SAGU
from repro.simd.pipeline import MacroSSOptions

from ..conftest import linear_program, make_pair_sum, make_ramp_source, make_scaler


class TestStrategyCosts:
    def test_scalar_always_available(self):
        costs = gather_strategy_costs(3, CORE_I7, neighbour_is_scalar=False)
        assert "scalar" in costs

    def test_permute_requires_power_of_two(self):
        assert "permute" in gather_strategy_costs(
            4, CORE_I7, neighbour_is_scalar=False)
        assert "permute" not in gather_strategy_costs(
            3, CORE_I7, neighbour_is_scalar=False)

    def test_permute_cost_formula(self):
        """Figure 7 / §3.4: X·lg2(X) permutes for X groups -> lg2(X) per
        group on top of one vector load."""
        costs = gather_strategy_costs(8, CORE_I7, neighbour_is_scalar=False)
        permute = costs["permute"]
        expected = CORE_I7.price("v_load_u") + 3 * CORE_I7.price("permute")
        assert permute.vector_side == expected

    def test_sagu_strategy_requires_scalar_neighbour(self):
        assert "sagu" not in gather_strategy_costs(
            4, CORE_I7, neighbour_is_scalar=False)
        assert "sagu" in gather_strategy_costs(
            4, CORE_I7, neighbour_is_scalar=True)

    def test_sagu_neighbour_cost_depends_on_hardware(self):
        soft = gather_strategy_costs(4, CORE_I7, neighbour_is_scalar=True)
        hard = gather_strategy_costs(4, CORE_I7_SAGU, neighbour_is_scalar=True)
        assert soft["sagu"].neighbour_side > hard["sagu"].neighbour_side

    def test_best_strategy_ordering(self):
        # Without SAGU hardware, software address translation (6 cyc/access)
        # makes the lane-ordered strategy lose to permutes for pow2 strides.
        assert best_gather_strategy(4, CORE_I7,
                                    neighbour_is_scalar=True) == "permute"
        # With the SAGU it wins.
        assert best_gather_strategy(4, CORE_I7_SAGU,
                                    neighbour_is_scalar=True) == "sagu"
        # Non-pow2 stride without SAGU: scalar packing is the best left.
        assert best_gather_strategy(3, CORE_I7,
                                    neighbour_is_scalar=True) == "scalar"
        # Non-pow2 stride with SAGU: lane-ordered works regardless.
        assert best_gather_strategy(3, CORE_I7_SAGU,
                                    neighbour_is_scalar=True) == "sagu"


class TestGraphPass:
    def _compiled(self, machine, tape_opt=True):
        g = linear_program(make_ramp_source(8),
                           make_scaler(pop=4, name="sc"),
                           make_pair_sum())
        options = MacroSSOptions(tape_optimization=tape_opt)
        return compile_graph(g, machine, options)

    def test_strategies_recorded(self):
        compiled = self._compiled(CORE_I7)
        assert compiled.report.tape_strategies  # decisions made

    def test_sagu_marks_lane_ordered_tapes(self):
        compiled = self._compiled(CORE_I7_SAGU)
        strategies = compiled.report.tape_strategies
        if any(s == "sagu" for s in strategies.values()):
            assert any(t.lane_ordered
                       for t in compiled.graph.tapes.values())

    def test_no_sagu_without_hardware_beyond_cost(self):
        compiled = self._compiled(CORE_I7)
        # software addr translation costs 6 cyc/access: never chosen
        assert all(s != "sagu"
                   for s in compiled.report.tape_strategies.values())

    def test_functional_equivalence_across_strategies(self):
        g = linear_program(make_ramp_source(8),
                           make_scaler(pop=4, name="sc"),
                           make_pair_sum())
        baseline = execute(g, iterations=4).outputs
        for machine in (CORE_I7, CORE_I7_SAGU):
            compiled = compile_graph(g, machine)
            outputs = execute(compiled.graph, machine=machine,
                              iterations=2).outputs
            n = min(len(baseline), len(outputs))
            assert outputs[:n] == baseline[:n]

    def test_sagu_machine_is_cheaper(self):
        base = self._compiled(CORE_I7, tape_opt=False)
        sagu = self._compiled(CORE_I7_SAGU)
        base_cpo = execute(base.graph, machine=CORE_I7,
                           iterations=2).cycles_per_output(CORE_I7)
        sagu_cpo = execute(sagu.graph, machine=CORE_I7_SAGU,
                           iterations=2).cycles_per_output(CORE_I7_SAGU)
        assert sagu_cpo < base_cpo

    def test_strategies_applied_to_bodies(self):
        compiled = self._compiled(CORE_I7)
        graph = compiled.graph
        for actor in graph.filters():
            for expr in iter_all_exprs(actor.spec.work_body):
                if isinstance(expr, (E.GatherPop, E.GatherPeek)):
                    boundary = compiled.report.tape_strategies.get(
                        f"{actor.name}.in")
                    if boundary is not None:
                        assert expr.strategy == boundary
