"""CLI coverage beyond the basics (profile, sagu variants, errors)."""

import pytest

from repro.cli import main


class TestProfileCommand:
    def test_profile_prints_both_variants(self, capsys):
        assert main(["profile", "BitonicSort"]) == 0
        out = capsys.readouterr().out
        assert "--- scalar ---" in out
        assert "--- MacroSS ---" in out
        assert "TOTAL" in out
        assert "event class" in out

    def test_profile_sagu(self, capsys):
        assert main(["profile", "MatrixMult", "--sagu"]) == 0
        assert "TOTAL" in capsys.readouterr().out


class TestCompileVariants:
    def test_compile_sagu_reports_sagu_strategies(self, capsys):
        assert main(["compile", "MatrixMult", "--sagu"]) == 0
        out = capsys.readouterr().out
        assert "sagu" in out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["run", "NotABench"])

    def test_run_reports_speedup(self, capsys):
        assert main(["run", "DES", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "x)" in out and "cycles/output" in out


class TestFigureCommands:
    def test_fig12_subset(self, capsys):
        assert main(["fig12", "--benchmarks", "DCT", "FFT"]) == 0
        out = capsys.readouterr().out
        assert "SAGU improvement" in out
        assert "DCT" in out and "FFT" in out
