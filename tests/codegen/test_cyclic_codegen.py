"""Codegen for feedback graphs: the emitter must handle cyclic schedules
and the enqueued-delay tapes."""

from repro.codegen import emit_cpp
from repro.graph import FilterSpec, Program, feedbackloop, flatten, pipeline
from repro.ir import WorkBuilder
from repro.simd.machine import CORE_I7

from ..conftest import make_ramp_source, make_scaler


def _echo_graph():
    b = WorkBuilder()
    b.push(b.pop() + b.pop())
    mix = FilterSpec("mix", pop=2, push=1, work_body=b.build())
    fb = feedbackloop(mix, make_scaler(0.5, name="decay"),
                      join_weights=(1, 1), duplicate_split=True,
                      enqueue=(0.0,))
    return flatten(Program("echo", pipeline(
        make_ramp_source(1), fb, make_scaler(1.0, name="tail"))))


class TestCyclicEmission:
    def test_emits_complete_unit(self):
        text = emit_cpp(_echo_graph(), CORE_I7)
        assert "int main()" in text
        assert "struct mix" in text
        assert "fb_joiner_work" in text and "fb_splitter_work" in text

    def test_enqueued_delays_preloaded_in_main(self):
        text = emit_cpp(_echo_graph(), CORE_I7)
        main = text[text.index("int main()"):]
        push_pos = main.index(".push(0.0f);")
        loop_pos = main.index("for (long it")
        assert push_pos < loop_pos

    def test_schedule_respects_data_dependences(self):
        """In the emitted steady loop, the joiner must fire before the mix
        body it feeds (the simulated schedule's order is preserved)."""
        text = emit_cpp(_echo_graph(), CORE_I7)
        main = text[text.index("int main()"):]
        steady = main[main.index("for (long it"):]
        assert steady.index("fb_joiner_work") < steady.index("mix_inst.work")
        assert steady.index("mix_inst.work") < steady.index(
            "fb_splitter_work")
