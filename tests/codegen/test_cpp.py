"""Structural tests for the C++ + SSE intrinsics emitter."""

import pytest

from repro.apps import get_benchmark
from repro.codegen import emit_cpp
from repro.graph import flatten
from repro.simd import compile_graph
from repro.simd.machine import CORE_I7, CORE_I7_SAGU

from ..conftest import linear_program, make_pair_sum, make_ramp_source, make_scaler


@pytest.fixture(scope="module")
def running_example_cpp():
    graph = flatten(get_benchmark("RunningExample"))
    compiled = compile_graph(graph, CORE_I7)
    return emit_cpp(compiled.graph, CORE_I7)


class TestStructure:
    def test_preamble(self, running_example_cpp):
        assert "#include <xmmintrin.h>" in running_example_cpp
        assert "template <typename T, int CAP> struct Tape" in running_example_cpp

    def test_one_struct_per_filter(self, running_example_cpp):
        for name in ("struct A {", "struct B_h {", "struct C_h {",
                     "struct _3D_2E {", "struct F {", "struct G {",
                     "struct H {"):
            assert name in running_example_cpp

    def test_steady_loop(self, running_example_cpp):
        assert "int main()" in running_example_cpp
        assert "for (long it = 0; it <" in running_example_cpp

    def test_vector_tapes_typed_m128(self, running_example_cpp):
        assert "Tape<__m128" in running_example_cpp

    def test_horizontal_movers_emitted(self, running_example_cpp):
        assert "hsplitter_work" in running_example_cpp
        assert "hjoiner_work" in running_example_cpp

    def test_strided_packing_idiom(self, running_example_cpp):
        """Figure 3b's set_ps-of-peeks packing must appear."""
        assert "_mm_set_ps(" in running_example_cpp
        assert ".rpush(_lane(" in running_example_cpp

    def test_permute_helpers_emitted_for_pow2_strides(self,
                                                      running_example_cpp):
        assert "extract_even" in running_example_cpp
        assert "extract_odd" in running_example_cpp

    def test_vector_constants(self, running_example_cpp):
        """The {5,6,7,8} divisor vector of the horizontally merged B."""
        assert "_mm_set_ps(8.0f, 7.0f, 6.0f, 5.0f)" in running_example_cpp


class TestSaguEmission:
    def test_sagu_struct_emitted_when_used(self):
        graph = flatten(get_benchmark("DCT"))
        compiled = compile_graph(graph, CORE_I7_SAGU)
        text = emit_cpp(compiled.graph, CORE_I7_SAGU)
        if any(t.lane_ordered for t in compiled.graph.tapes.values()):
            assert "struct SAGU" in text
            assert "lane-ordered" in text


class TestScalarGraphEmission:
    def test_plain_graph_emits_without_vectors(self):
        g = linear_program(make_ramp_source(4), make_scaler(),
                           make_pair_sum())
        text = emit_cpp(g, CORE_I7)
        assert "struct scale" in text
        assert "__in.pop()" in text
        assert "_mm_add_ps" not in text

    def test_every_benchmark_emits(self):
        from repro.apps import BENCHMARKS
        for name in sorted(BENCHMARKS):
            graph = flatten(get_benchmark(name))
            compiled = compile_graph(graph, CORE_I7)
            text = emit_cpp(compiled.graph, CORE_I7)
            assert "int main()" in text
            assert len(text.splitlines()) > 50

    def test_math_mapping(self):
        from repro.ir import WorkBuilder, call
        from repro.graph import FilterSpec
        b = WorkBuilder()
        b.push(call("sqrt", call("abs", b.pop())))
        spec = FilterSpec("m", pop=1, push=1, work_body=b.build())
        g = linear_program(make_ramp_source(4), spec)
        text = emit_cpp(g, CORE_I7)
        assert "sqrtf(" in text and "fabsf(" in text
        compiled = compile_graph(g, CORE_I7)
        vec_text = emit_cpp(compiled.graph, CORE_I7)
        assert "_mm_sqrt_ps(" in vec_text
