"""Tests for the integer-vector (epi32) code generation path."""

import pytest

from repro.apps import get_benchmark
from repro.codegen import emit_cpp
from repro.graph import FilterSpec, flatten
from repro.ir import INT, WorkBuilder
from repro.simd import compile_graph
from repro.simd.machine import CORE_I7

from ..conftest import linear_program


def _int_source(push=4):
    from repro.graph import StateVar
    b = WorkBuilder()
    s = b.var("s")
    with b.loop("i", 0, push):
        b.set(s, (s * 75 + 74) % 65537)
        b.push(s)
    return FilterSpec("isrc", pop=0, push=push, data_type=INT,
                      state=(StateVar("s", INT, 0, 1),), work_body=b.build())


def _bit_mixer():
    b = WorkBuilder()
    x = b.let("x", b.pop(), ty=INT)
    b.push(((x << 3) ^ (x >> 2)) & 1048575)
    return FilterSpec("mix", pop=1, push=1, data_type=INT,
                      work_body=b.build())


class TestIntegerVectors:
    def test_vectorized_int_actor_emits_epi32(self):
        g = linear_program(_int_source(), _bit_mixer())
        compiled = compile_graph(g, CORE_I7)
        assert compiled.report.decisions["mix"] == "single"
        text = emit_cpp(compiled.graph, CORE_I7)
        assert "__m128i" in text
        assert "_mm_xor_si128" in text
        assert "_mm_slli_epi32" in text and "_mm_srli_epi32" in text
        assert "_mm_and_si128" in text
        assert "Tape<int" in text

    def test_shift_uses_immediate_form(self):
        g = linear_program(_int_source(), _bit_mixer())
        compiled = compile_graph(g, CORE_I7)
        text = emit_cpp(compiled.graph, CORE_I7)
        assert "_mm_slli_epi32(" in text
        # immediate count, not a splatted vector
        assert "_mm_slli_epi32(_mm_set1_epi32" not in text

    def test_des_benchmark_emits(self):
        g = flatten(get_benchmark("DES"))
        compiled = compile_graph(g, CORE_I7)
        text = emit_cpp(compiled.graph, CORE_I7)
        assert "int main()" in text
        assert "_mm_mullo_epi32" in text  # the F-function hash multiply
        assert "_lane_i(" in text         # integer lane extraction

    def test_float_comparison_normalised_to_unit_mask(self):
        """The MP3 sign trick `(x >= 0) * 2 - 1` must emit a 0/1 mask."""
        g = flatten(get_benchmark("MP3Decoder"))
        compiled = compile_graph(g, CORE_I7)
        text = emit_cpp(compiled.graph, CORE_I7)
        assert "_mm_and_ps(_mm_cmpge_ps" in text


class TestDesBenchmark:
    def test_fully_fused(self):
        g = flatten(get_benchmark("DES"))
        report = compile_graph(g, CORE_I7).report
        assert any(len(seg) == 8 for seg in report.vertical_segments)

    def test_integer_outputs_bit_exact(self):
        from repro.runtime import execute
        g = flatten(get_benchmark("DES"))
        baseline = execute(g, iterations=2).outputs
        compiled = compile_graph(g, CORE_I7)
        outputs = execute(compiled.graph, machine=CORE_I7,
                          iterations=1).outputs
        n = min(len(baseline), len(outputs))
        assert outputs[:n] == baseline[:n]
        assert all(isinstance(x, int) for x in baseline)
