"""Golden-file tests for C++ codegen of the SIMDized running example.

The emitted intrinsics text for the Figure-3 running example (compiled
for Core-i7 with and without SAGU) is snapshotted under
``tests/codegen/golden/`` and diffed verbatim.  After an intentional
codegen change, refresh the snapshots with::

    pytest tests/codegen/test_golden_cpp.py --update-golden

The diff output points at the first divergent line so unintentional
drift (intrinsic renames, reordered sections, changed address
arithmetic) is caught immediately.
"""

from __future__ import annotations

from pathlib import Path

import pytest

from repro.codegen import emit_cpp
from repro.experiments.harness import scalar_graph
from repro.simd import compile_graph
from repro.simd.machine import CORE_I7, CORE_I7_SAGU

GOLDEN_DIR = Path(__file__).parent / "golden"

CASES = {
    "running_example_i7": CORE_I7,
    "running_example_sagu": CORE_I7_SAGU,
}


def _emit(machine) -> str:
    compiled = compile_graph(scalar_graph("RunningExample"), machine)
    return emit_cpp(compiled.graph, machine)


def _first_diff(a: str, b: str) -> str:
    a_lines, b_lines = a.splitlines(), b.splitlines()
    for i, (la, lb) in enumerate(zip(a_lines, b_lines), start=1):
        if la != lb:
            return f"line {i}:\n  golden:  {la!r}\n  current: {lb!r}"
    return (f"length mismatch: golden {len(a_lines)} lines, "
            f"current {len(b_lines)} lines")


@pytest.mark.parametrize("case", sorted(CASES))
def test_running_example_codegen_matches_golden(case, update_golden):
    golden_path = GOLDEN_DIR / f"{case}.cpp"
    current = _emit(CASES[case])
    if update_golden:
        golden_path.parent.mkdir(parents=True, exist_ok=True)
        golden_path.write_text(current, encoding="utf-8")
        pytest.skip(f"updated {golden_path}")
    assert golden_path.is_file(), (
        f"missing golden snapshot {golden_path}; create it with "
        f"pytest --update-golden")
    golden = golden_path.read_text(encoding="utf-8")
    assert current == golden, (
        f"codegen drift for {case} (refresh with --update-golden)\n"
        + _first_diff(golden, current))


def test_golden_snapshots_contain_intrinsics():
    """Sanity: the snapshots really are SIMDized code, not scalar C++."""
    for case in CASES:
        path = GOLDEN_DIR / f"{case}.cpp"
        if not path.is_file():
            pytest.skip("snapshots not generated yet")
        text = path.read_text(encoding="utf-8")
        assert "_mm_" in text or "vld1q" in text, case


def test_emission_is_deterministic():
    assert _emit(CORE_I7) == _emit(CORE_I7)
