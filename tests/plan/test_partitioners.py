"""Partitioner contracts: total assignments, in-range cores, and the
all-zero-cost-map regression for contiguous slicing."""

from __future__ import annotations

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.plan import get_partitioner, list_partitioners, partition_contiguous
from repro.simd.machine import CORE_I7

from ..conftest import (
    linear_program,
    make_expander,
    make_pair_sum,
    make_ramp_source,
    make_scaler,
)


def _chain_graph(length: int):
    """A pipeline with ``length`` scalers behind the source."""
    stages = [make_scaler(name=f"s{i}") for i in range(length)]
    return linear_program(make_ramp_source(4), *stages)


GRAPHS = {
    "chain3": _chain_graph(3),
    "chain6": _chain_graph(6),
    "rates": linear_program(make_ramp_source(4), make_expander(),
                            make_scaler(), make_pair_sum()),
}


@settings(max_examples=40, deadline=None)
@given(name=st.sampled_from(sorted(list_partitioners())),
       graph_key=st.sampled_from(sorted(GRAPHS)),
       cores=st.integers(min_value=1, max_value=6),
       seed=st.integers(min_value=0, max_value=2**32 - 1))
def test_partitioners_produce_total_inrange_assignments(name, graph_key,
                                                        cores, seed):
    """Property (all registered partitioners, seeded random cost maps):
    every actor is assigned exactly once and every core index lies in
    ``range(cores)`` — including zero, uniform, and wildly skewed costs."""
    graph = GRAPHS[graph_key]
    rng = random.Random(seed)
    mode = rng.choice(("zero", "uniform", "skewed"))
    if mode == "zero":
        costs = {aid: 0.0 for aid in graph.actors}
    elif mode == "uniform":
        costs = {aid: 100.0 for aid in graph.actors}
    else:
        costs = {aid: rng.choice((0.0, 1.0, 10.0, 1000.0))
                 for aid in graph.actors}
    part = get_partitioner(name, CORE_I7)(graph, costs, cores)
    assert set(part.assignment) == set(graph.actors)
    assert all(core in range(cores) for core in part.assignment.values())
    assert part.cores == cores
    assert len(part.loads(costs)) == cores


class TestContiguousZeroCostRegression:
    """The old rule (``acc >= target * (core+1)`` with target == 0) hopped
    to the next core after *every* actor, piling the pipeline's whole tail
    onto the last core."""

    def test_zero_costs_spread_evenly_by_count(self):
        graph = _chain_graph(7)  # 8 actors with the source
        costs = {aid: 0.0 for aid in graph.actors}
        part = partition_contiguous(graph, costs, 4)
        loads = [0] * 4
        for core in part.assignment.values():
            loads[core] += 1
        assert loads == [2, 2, 2, 2]

    def test_zero_costs_do_not_pile_tail_on_last_core(self):
        graph = _chain_graph(9)  # 10 actors
        costs = {aid: 0.0 for aid in graph.actors}
        part = partition_contiguous(graph, costs, 2)
        last_core_count = sum(1 for c in part.assignment.values() if c == 1)
        assert last_core_count == 5  # was 9 under the buggy rule

    def test_zero_costs_keep_slices_contiguous(self):
        graph = _chain_graph(5)
        costs = {aid: 0.0 for aid in graph.actors}
        part = partition_contiguous(graph, costs, 3)
        cores_in_order = [part.assignment[aid]
                          for aid in graph.ordered_actors()]
        assert cores_in_order == sorted(cores_in_order)

    def test_empty_cost_map_treated_as_zero(self):
        graph = _chain_graph(3)
        part = partition_contiguous(graph, {}, 2)
        assert set(part.assignment) == set(graph.actors)
        assert set(part.assignment.values()) == {0, 1}

    def test_more_cores_than_actors_zero_costs(self):
        graph = linear_program(make_ramp_source(4), make_scaler())
        costs = {aid: 0.0 for aid in graph.actors}
        part = partition_contiguous(graph, costs, 8)
        assert set(part.assignment) == set(graph.actors)
        assert all(c in range(8) for c in part.assignment.values())

    def test_nonzero_costs_unchanged(self):
        """The fix only touches the no-signal path: with real costs the
        cumulative-threshold slicing behaves as before."""
        graph = _chain_graph(3)
        order = graph.ordered_actors()
        costs = {aid: 10.0 for aid in order}
        part = partition_contiguous(graph, costs, 2)
        cores_in_order = [part.assignment[aid] for aid in order]
        assert cores_in_order == [0, 0, 1, 1]
