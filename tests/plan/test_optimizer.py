"""The branch-and-bound partition optimizer: never worse than greedy,
deterministic, and typed about infeasibility."""

from __future__ import annotations

import pytest

from repro.apps import BENCHMARKS
from repro.experiments.harness import scalar_graph
from repro.plan import (
    InfeasiblePlanError,
    PlanError,
    build_plan_context,
    evaluate_partition,
    optimize_partition,
    partition_lpt,
)

EPS = 1e-6

#: One profiled context per registered app, shared across the matrix.
_CTX_CACHE = {}


def _ctx(app, target="i7"):
    key = (app, target)
    if key not in _CTX_CACHE:
        _CTX_CACHE[key] = build_plan_context(scalar_graph(app), target)
    return _CTX_CACHE[key]


@pytest.mark.parametrize("app", sorted(BENCHMARKS))
@pytest.mark.parametrize("cores", (2, 4))
class TestNeverWorseThanGreedy:
    """Acceptance bar: on every registered app x {2, 4} cores the planner's
    modeled makespan is <= LPT's and its planned buffer memory under the
    default bound is <= the LPT plan's sequential-occupancy memory."""

    def test_opt_beats_or_matches_lpt(self, app, cores):
        ctx = _ctx(app)
        result = optimize_partition(ctx, cores)
        lpt_eval = evaluate_partition(
            ctx, partition_lpt(ctx.graph, ctx.costs, cores))
        assert result.evaluation.makespan <= lpt_eval.makespan + EPS
        assert result.evaluation.memory_items <= lpt_eval.memory_items
        # The baseline recorded on the result is that same LPT pricing.
        assert result.baseline.makespan == pytest.approx(lpt_eval.makespan)

    def test_partition_is_total_and_in_range(self, app, cores):
        result = optimize_partition(_ctx(app), cores)
        part = result.partition
        assert set(part.assignment) == set(_ctx(app).graph.actors)
        assert all(c in range(cores) for c in part.assignment.values())


class TestDeterminism:
    def test_same_context_same_plan(self):
        ctx = _ctx("DCT")
        a = optimize_partition(ctx, 4)
        b = optimize_partition(ctx, 4)
        assert a.partition.assignment == b.partition.assignment
        assert a.nodes == b.nodes
        assert a.evaluation.makespan == b.evaluation.makespan

    def test_dual_objective_minimizes_makespan(self):
        ctx = _ctx("FFT")
        fastest = optimize_partition(ctx, 4, objective="makespan")
        default = optimize_partition(ctx, 4)
        assert fastest.evaluation.makespan <= default.evaluation.makespan + EPS

    def test_result_audit_fields(self):
        ctx = _ctx("DCT")
        result = optimize_partition(ctx, 2)
        assert result.objective == "memory"
        assert result.nodes > 0
        assert result.makespan_bound == pytest.approx(
            result.baseline.makespan)


class TestInfeasibility:
    def test_negative_memory_budget_is_typed(self):
        ctx = _ctx("DCT")
        with pytest.raises(InfeasiblePlanError) as err:
            optimize_partition(ctx, 2, objective="makespan",
                               memory_budget=-1)
        assert err.value.bound == -1
        assert err.value.proven

    def test_impossible_makespan_bound_is_typed(self):
        ctx = _ctx("DCT")
        with pytest.raises(InfeasiblePlanError) as err:
            optimize_partition(ctx, 4, makespan_bound=1.0)
        assert err.value.bound == 1.0

    def test_plan_error_hierarchy(self):
        from repro.runtime.errors import StreamRuntimeError
        assert issubclass(InfeasiblePlanError, PlanError)
        assert issubclass(PlanError, StreamRuntimeError)

    def test_bad_core_count_rejected(self):
        with pytest.raises(PlanError, match="at least one core"):
            optimize_partition(_ctx("DCT"), 0)

    def test_bad_objective_rejected(self):
        with pytest.raises(PlanError, match="unknown objective"):
            optimize_partition(_ctx("DCT"), 2, objective="latency")

    def test_zero_memory_budget_forces_serial_shape(self):
        """A zero budget is feasible — it forces a plan with no cut
        tapes (every connected component on one core)."""
        ctx = _ctx("DCT")
        result = optimize_partition(ctx, 4, objective="makespan",
                                    memory_budget=0)
        assert result.evaluation.memory_items == 0
        assert not result.evaluation.cut_tapes


class TestCommunicationAwareness:
    def test_gpu_like_comm_price_reshapes_partition(self):
        """The same graph planned for min makespan: the gpu-like target's
        160-cycle COMM price makes cuts that are profitable on the i7
        unprofitable, changing the chosen partition."""
        i7 = optimize_partition(_ctx("DCT", "i7"), 4, objective="makespan")
        gpu = optimize_partition(_ctx("DCT", "gpu-like"), 4,
                                 objective="makespan")
        i7_cores = len(set(i7.partition.assignment.values()))
        gpu_cores = len(set(gpu.partition.assignment.values()))
        assert gpu_cores < i7_cores
