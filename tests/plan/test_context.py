"""PlanContext assembly and communication-aware partition pricing."""

from __future__ import annotations

import pytest

from repro.perf import events as ev
from repro.plan import (
    Partition,
    build_plan_context,
    evaluate_partition,
    plan_capacities,
    profile_actor_costs,
    sequential_max_occupancy,
    steady_crossings,
)
from repro.simd.machine import CORE_I7, GPU_LIKE

from ..conftest import (
    linear_program,
    make_pair_sum,
    make_ramp_source,
    make_scaler,
)


def _graph():
    return linear_program(make_ramp_source(4), make_scaler(name="a"),
                          make_pair_sum())


class TestContext:
    def test_costs_are_per_iteration(self):
        """Profiling twice as long must not change per-iteration costs —
        the normalization that keeps compute loads commensurable with
        per-iteration communication charges."""
        graph = _graph()
        short = profile_actor_costs(graph, CORE_I7, iterations=2)
        long = profile_actor_costs(graph, CORE_I7, iterations=4)
        assert short.keys() == long.keys()
        for aid in short:
            assert short[aid] == pytest.approx(long[aid])

    def test_context_carries_target_comm_price(self):
        graph = _graph()
        i7 = build_plan_context(graph, "i7")
        gpu = build_plan_context(graph, "gpu-like")
        assert i7.comm_price == CORE_I7.price(ev.COMM)
        assert gpu.comm_price == GPU_LIKE.price(ev.COMM)
        assert gpu.comm_price > i7.comm_price

    def test_capacities_match_capacity_planner(self):
        graph = _graph()
        ctx = build_plan_context(graph, "i7")
        expected = plan_capacities(graph, ctx.schedule, graph.tapes)
        assert ctx.capacities == expected

    def test_traffic_matches_steady_crossings(self):
        graph = _graph()
        ctx = build_plan_context(graph, "i7")
        assert ctx.traffic == steady_crossings(graph, ctx.schedule)

    def test_total_work_is_cost_sum(self):
        ctx = build_plan_context(_graph(), "i7")
        assert ctx.total_work == pytest.approx(sum(ctx.costs.values()))

    def test_explicit_costs_short_circuit_profiling(self):
        graph = _graph()
        costs = {aid: 1.0 for aid in graph.actors}
        ctx = build_plan_context(graph, "i7", costs=costs)
        assert ctx.costs == costs


class TestEvaluate:
    def test_serial_partition_has_no_comm_or_memory(self):
        graph = _graph()
        ctx = build_plan_context(graph, "i7")
        serial = Partition({aid: 0 for aid in graph.actors}, 2)
        ev_ = evaluate_partition(ctx, serial)
        assert ev_.memory_items == 0
        assert ev_.comm_cycles == 0.0
        assert not ev_.cut_tapes
        assert ev_.makespan == pytest.approx(ctx.total_work)

    def test_cut_pays_capacity_and_comm(self):
        graph = _graph()
        ctx = build_plan_context(graph, "i7")
        order = graph.ordered_actors()
        split = {aid: (0 if i < 2 else 1) for i, aid in enumerate(order)}
        ev_ = evaluate_partition(ctx, Partition(split, 2))
        assert ev_.cut_tapes
        assert ev_.memory_items == sum(ctx.capacities[t]
                                       for t in ev_.cut_tapes)
        assert ev_.comm_cycles == pytest.approx(
            sum(ctx.comm_cycles(t) for t in ev_.cut_tapes))

    def test_receiving_core_pays_the_transfer(self):
        """Doubling COMM price on the same cut raises only the consumer
        side's load (paper §5: the receiving core stalls on the
        transfer)."""
        graph = _graph()
        base = build_plan_context(graph, "i7")
        order = graph.ordered_actors()
        split = Partition({aid: (0 if i < len(order) - 1 else 1)
                           for i, aid in enumerate(order)}, 2)
        ev_base = evaluate_partition(base, split)
        import dataclasses
        pricier = dataclasses.replace(base, comm_price=base.comm_price * 2)
        ev_pricey = evaluate_partition(pricier, split)
        assert ev_pricey.core_loads[1] > ev_base.core_loads[1]
        assert ev_pricey.core_loads[0] == pytest.approx(ev_base.core_loads[0])

    def test_sequential_occupancy_bounds_capacity(self):
        graph = _graph()
        ctx = build_plan_context(graph, "i7")
        occ = sequential_max_occupancy(graph, ctx.schedule)
        for tid, cap in ctx.capacities.items():
            assert cap >= max(1, occ[tid])
