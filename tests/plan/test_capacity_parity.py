"""Deadlock-freedom of planner-driven parallel runs.

The optimizer may produce partition shapes no greedy strategy would pick
(it sweeps makespan bounds, so cuts land in unusual places); every such
partition's capacity plan must still give a deadlock-free, output-
identical parallel run — on every registered app at 1, 2, and 4 cores.
"""

from __future__ import annotations

import random

import pytest

from repro.apps import BENCHMARKS
from repro.experiments.harness import scalar_graph
from repro.multicore.parallel import parallel_execute
from repro.plan import (
    InfeasiblePlanError,
    build_plan_context,
    optimize_partition,
)
from repro.runtime.executor import execute

_ITER = 2


@pytest.mark.parametrize("app", sorted(BENCHMARKS))
@pytest.mark.parametrize("cores", (1, 2, 4))
def test_optimizer_partitions_run_deadlock_free(app, cores):
    """Default plan + randomly bounded plans: the parallel runtime must
    complete (no channel stall timeout) with sequential outputs."""
    graph = scalar_graph(app)
    ctx = build_plan_context(graph, "i7", iterations=_ITER)
    seq = execute(graph, machine=ctx.machine, iterations=_ITER)

    plans = [optimize_partition(ctx, cores).partition]
    # Random interior makespan bounds push the optimizer off the greedy
    # shapes; seeded per (app, cores) so failures replay.
    rng = random.Random(hash((app, cores)) & 0xFFFFFFFF)
    fastest = optimize_partition(ctx, cores, objective="makespan")
    low, high = fastest.evaluation.makespan, ctx.total_work
    for _ in range(2):
        bound = low + (high - low) * rng.random()
        try:
            plans.append(optimize_partition(ctx, cores,
                                            makespan_bound=bound).partition)
        except InfeasiblePlanError:  # pragma: no cover - bound >= low
            continue

    for part in plans:
        par = parallel_execute(graph, machine=ctx.machine,
                               iterations=_ITER, cores=cores,
                               partition=part, stall_timeout=60.0)
        assert par.outputs == seq.outputs
        assert par.init_outputs == seq.init_outputs
