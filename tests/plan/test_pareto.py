"""The memory-vs-makespan Pareto explorer: monotone fronts, no dominated
points, typed feasibility errors."""

from __future__ import annotations

import pytest

from repro.experiments.harness import DEFAULT_BENCHMARKS, scalar_graph
from repro.plan import (
    InfeasiblePlanError,
    build_plan_context,
    evaluate_partition,
    pareto_front,
)

_CTX_CACHE = {}


def _ctx(app, target="i7"):
    key = (app, target)
    if key not in _CTX_CACHE:
        _CTX_CACHE[key] = build_plan_context(scalar_graph(app), target)
    return _CTX_CACHE[key]


@pytest.mark.parametrize("app", DEFAULT_BENCHMARKS)
class TestFrontShape:
    def test_front_is_strictly_monotone(self, app):
        """Makespan strictly increasing, memory strictly decreasing —
        i.e. no dominated and no duplicate points survive the filter."""
        front = pareto_front(_ctx(app), 4, points=6)
        assert front, "front must never be empty"
        for prev, cur in zip(front, front[1:]):
            assert cur.makespan > prev.makespan
            assert cur.memory_items < prev.memory_items

    def test_no_point_dominates_another(self, app):
        front = pareto_front(_ctx(app), 4, points=6)
        for a in front:
            for b in front:
                if a is b:
                    continue
                dominates = (a.makespan <= b.makespan
                             and a.memory_items <= b.memory_items)
                assert not dominates

    def test_front_ends_at_zero_memory_serial_anchor(self, app):
        front = pareto_front(_ctx(app), 4, points=6)
        assert front[-1].memory_items == 0
        assert not front[-1].evaluation.cut_tapes

    def test_points_price_consistently_with_evaluate(self, app):
        """Every front point's numbers re-derive from its partition."""
        ctx = _ctx(app)
        for pt in pareto_front(ctx, 4, points=4):
            ev = evaluate_partition(ctx, pt.partition)
            assert ev.makespan == pytest.approx(pt.makespan)
            assert ev.memory_items == pt.memory_items


class TestFrontSize:
    @pytest.mark.parametrize("app", DEFAULT_BENCHMARKS)
    def test_at_least_three_points_on_i7(self, app):
        """The acceptance bar for BENCH_plan.json: every app's i7 front
        offers at least three distinct memory-vs-throughput trade-offs."""
        front = pareto_front(_ctx(app), 4, points=6)
        assert len(front) >= 3

    def test_more_points_refine_not_degrade(self):
        ctx = _ctx("FFT")
        coarse = pareto_front(ctx, 4, points=2)
        fine = pareto_front(ctx, 4, points=8)
        assert len(fine) >= len(coarse)
        # Anchors agree regardless of sweep resolution.
        assert fine[0].makespan == pytest.approx(coarse[0].makespan)
        assert fine[-1].memory_items == coarse[-1].memory_items == 0


class TestErrors:
    def test_negative_points_is_typed(self):
        with pytest.raises(InfeasiblePlanError):
            pareto_front(_ctx("DCT"), 4, points=-1)

    def test_single_core_front_is_one_serial_point(self):
        front = pareto_front(_ctx("DCT"), 1, points=4)
        assert len(front) == 1
        assert front[0].memory_items == 0
