"""The partitioner registry: lookup, aliases, did-you-mean, extension."""

from __future__ import annotations

import pytest

from repro.plan import (
    Partition,
    UnknownPartitionerError,
    get_partitioner,
    list_partitioners,
    partition_contiguous,
    partition_lpt,
    register_partitioner,
)
from repro.plan.partitioners import _PARTITIONER_ALIASES, _PARTITIONERS
from repro.runtime.errors import StreamRuntimeError
from repro.simd.machine import CORE_I7, GPU_LIKE

from ..conftest import linear_program, make_ramp_source, make_scaler


class TestLookup:
    def test_builtin_names_registered(self):
        assert list_partitioners() == ["contiguous", "lpt", "opt"]

    def test_name_resolves_to_callable(self):
        fn = get_partitioner("lpt")
        assert fn is partition_lpt

    def test_names_are_case_insensitive(self):
        assert get_partitioner("LPT") is partition_lpt
        assert get_partitioner("Contiguous") is partition_contiguous

    def test_aliases_resolve(self):
        assert get_partitioner("contig") is partition_contiguous
        # optimizer aliases produce a fresh (machine-bound) closure
        assert callable(get_partitioner("bb"))
        assert callable(get_partitioner("ilp"))

    def test_callable_passes_through_unchanged(self):
        def custom(graph, costs, cores):  # pragma: no cover - never called
            raise AssertionError
        assert get_partitioner(custom) is custom

    def test_opt_factory_closes_over_machine(self):
        graph = linear_program(make_ramp_source(4), make_scaler())
        fn_i7 = get_partitioner("opt", CORE_I7)
        fn_gpu = get_partitioner("opt", GPU_LIKE)
        costs = {aid: 1.0 for aid in graph.actors}
        # Both produce valid partitions; the closures are distinct.
        assert fn_i7 is not fn_gpu
        for fn in (fn_i7, fn_gpu):
            part = fn(graph, costs, 2)
            assert isinstance(part, Partition)
            assert set(part.assignment) == set(graph.actors)


class TestUnknownNames:
    def test_unknown_name_raises_typed_error(self):
        with pytest.raises(UnknownPartitionerError):
            get_partitioner("round-robin")

    def test_error_is_a_stream_runtime_error(self):
        # StreamRuntimeError is the CLI's exit-2 class: unknown
        # --partitioner names exit cleanly instead of dumping a traceback.
        assert issubclass(UnknownPartitionerError, StreamRuntimeError)

    def test_did_you_mean_suggestion(self):
        with pytest.raises(UnknownPartitionerError, match="did you mean"):
            get_partitioner("ltp")
        with pytest.raises(UnknownPartitionerError, match="'lpt'"):
            get_partitioner("ltp")

    def test_message_lists_registered_names(self):
        with pytest.raises(UnknownPartitionerError,
                           match="contiguous, lpt, opt"):
            get_partitioner("nope")


class TestRegistration:
    def _cleanup(self, *names):
        for name in names:
            _PARTITIONERS.pop(name, None)
        for alias in [a for a, k in _PARTITIONER_ALIASES.items()
                      if k in names]:
            _PARTITIONER_ALIASES.pop(alias, None)

    def test_register_and_resolve(self):
        def factory(machine):
            return partition_lpt
        try:
            register_partitioner("mine", factory, aliases=("m1",))
            assert "mine" in list_partitioners()
            assert get_partitioner("m1") is partition_lpt
        finally:
            self._cleanup("mine")

    def test_duplicate_name_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_partitioner("lpt", lambda machine: partition_lpt)

    def test_alias_collision_rejected(self):
        with pytest.raises(ValueError):
            register_partitioner("fresh", lambda machine: partition_lpt,
                                 aliases=("contig",))
        assert "fresh" not in list_partitioners()
