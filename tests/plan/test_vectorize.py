"""Whole-program vectorization planning and target sensitivity."""

from __future__ import annotations

import pytest

from repro.experiments.harness import DEFAULT_BENCHMARKS, scalar_graph
from repro.plan import plan_vectorization


class TestVectorizationPlan:
    def test_macross_wins_on_i7_dct(self):
        vec = plan_vectorization(scalar_graph("DCT"), "i7")
        assert vec.mode == "macross"
        assert vec.speedup > 1.0
        assert vec.machine == "core-i7-sse4"

    def test_decisions_cover_techniques(self):
        vec = plan_vectorization(scalar_graph("DCT"), "i7")
        counts = vec.technique_counts()
        assert sum(counts.values()) == len(vec.decisions)
        assert counts  # at least one technique family

    def test_deterministic(self):
        a = plan_vectorization(scalar_graph("FFT"), "i7")
        b = plan_vectorization(scalar_graph("FFT"), "i7")
        assert a.mode == b.mode
        assert a.scalar_cycles == b.scalar_cycles
        assert a.macross_cycles == b.macross_cycles


class TestTargetSensitivity:
    def test_gpu_like_flips_plan_on_at_least_two_apps(self):
        """Acceptance bar: gpu-like vs i7 must produce a different
        partition or vectorization choice on >= 2 apps.  The wide vectors
        and expensive lane moves change the horizontal/vertical technique
        mix on several suite apps (the partition side is covered by
        ``test_optimizer.TestCommunicationAwareness``)."""
        flipped = []
        for app in DEFAULT_BENCHMARKS:
            graph = scalar_graph(app)
            i7 = plan_vectorization(graph, "i7")
            gpu = plan_vectorization(graph, "gpu-like")
            if (i7.mode, sorted(i7.technique_counts().items())) != \
                    (gpu.mode, sorted(gpu.technique_counts().items())):
                flipped.append(app)
        assert len(flipped) >= 2, flipped
