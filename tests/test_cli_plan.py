"""CLI tests for ``macross plan`` and planner-aware ``--partitioner``."""

import pytest

from repro.cli import main


class TestPlanCommand:
    def test_plan_prints_strategy_table_and_front(self, capsys):
        assert main(["plan", "dct", "--cores", "4"]) == 0
        out = capsys.readouterr().out
        # strategy comparison covers every registered partitioner
        for name in ("lpt", "contiguous", "opt"):
            assert name in out
        assert "makespan" in out and "memory" in out
        assert "optimizer:" in out
        assert "vectorization:" in out
        assert "Pareto front" in out

    def test_plan_gpu_like_target(self, capsys):
        assert main(["plan", "dct", "--cores", "4",
                     "--target", "gpu-like"]) == 0
        out = capsys.readouterr().out
        assert "gpu-like" in out
        assert "COMM 160" in out

    def test_plan_target_is_machine_alias(self, capsys):
        assert main(["plan", "dct", "--machine", "gpu-like"]) == 0
        assert "gpu-like" in capsys.readouterr().out

    def test_plan_memory_budget_dual(self, capsys):
        assert main(["plan", "dct", "--cores", "4",
                     "--memory-budget", "0"]) == 0
        out = capsys.readouterr().out
        assert "memory budget 0" in out

    def test_plan_infeasible_budget_exits_2(self, capsys):
        assert main(["plan", "dct", "--memory-budget", "-5"]) == 2
        err = capsys.readouterr().err
        assert "error:" in err and "negative" in err

    def test_plan_unknown_target_exits_2_with_listing(self, capsys):
        assert main(["plan", "dct", "--target", "tpu"]) == 2
        err = capsys.readouterr().err
        assert "unknown target" in err
        assert "gpu-like" in err  # registry listing follows

    def test_plan_unknown_benchmark_errors(self, capsys):
        with pytest.raises(KeyError):
            main(["plan", "nosuchbench"])


class TestPartitionerFlag:
    def test_multicore_accepts_registered_opt(self, capsys):
        assert main(["multicore", "dct", "--cores", "2",
                     "--partitioner", "opt", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "opt partitioner" in out
        assert "MISMATCH" not in out

    def test_multicore_accepts_alias(self, capsys):
        assert main(["multicore", "dct", "--cores", "2",
                     "--partitioner", "contig", "--iterations", "1"]) == 0
        assert "MISMATCH" not in capsys.readouterr().out

    def test_unknown_partitioner_exits_2_with_did_you_mean(self, capsys):
        assert main(["multicore", "dct", "--partitioner", "ltp"]) == 2
        err = capsys.readouterr().err
        assert "unknown partitioner 'ltp'" in err
        assert "did you mean 'lpt'" in err
        assert "contiguous, lpt, opt" in err
