"""Tests for Equation (1) repetition scaling."""

import pytest

from repro.schedule import per_actor_factor, scale_repetitions, simd_scaling_factor


class TestPerActorFactor:
    def test_already_multiple(self):
        assert per_actor_factor(4, 8) == 1
        assert per_actor_factor(4, 4) == 1

    def test_lcm_formula(self):
        # LCM(4, 6)/6 = 12/6 = 2
        assert per_actor_factor(4, 6) == 2
        # LCM(4, 3)/3 = 12/3 = 4
        assert per_actor_factor(4, 3) == 4
        # LCM(4, 2)/2 = 2
        assert per_actor_factor(4, 2) == 2

    def test_factor_divides_simd_width(self):
        for rep in range(1, 40):
            assert 4 % per_actor_factor(4, rep) == 0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            per_actor_factor(4, 0)
        with pytest.raises(ValueError):
            per_actor_factor(0, 4)


class TestGlobalFactor:
    def test_paper_running_example(self):
        """§3.1: the Figure 2a graph must be scaled by M = 2 (SIMDizable
        actors have reps 2 = coarse D/E and 2 = G after fusion)."""
        reps = {0: 2, 1: 2}
        assert simd_scaling_factor(4, reps, [0, 1]) == 2

    def test_max_over_actors(self):
        reps = {0: 4, 1: 6, 2: 3}
        assert simd_scaling_factor(4, reps, [0, 1, 2]) == 4

    def test_no_simdizable_actors(self):
        assert simd_scaling_factor(4, {0: 5}, []) == 1

    def test_scaled_reps_are_multiples(self):
        reps = {0: 6, 1: 9, 2: 2}
        factor = simd_scaling_factor(4, reps, list(reps))
        scaled = scale_repetitions(reps, factor)
        assert all(value % 4 == 0 for value in scaled.values())

    def test_scale_repetitions_validates(self):
        with pytest.raises(ValueError):
            scale_repetitions({0: 1}, 0)
