"""Tests for SDF balance-equation solving."""

import pytest

from repro.graph import (
    FilterSpec,
    Program,
    StreamGraph,
    flatten,
    pipeline,
    roundrobin_joiner,
    roundrobin_splitter,
    splitjoin,
)
from repro.schedule import RateError, check_balanced, repetition_vector
from repro.ir import WorkBuilder

from ..conftest import (
    linear_program,
    make_expander,
    make_pair_sum,
    make_ramp_source,
    make_scaler,
)


def _names(graph, reps):
    return {graph.actors[aid].name: rep for aid, rep in reps.items()}


class TestRepetitionVector:
    def test_matched_rates_give_ones(self):
        g = linear_program(make_ramp_source(1), make_scaler())
        assert set(repetition_vector(g).values()) == {1}

    def test_rate_mismatch_scales(self):
        g = linear_program(make_ramp_source(1), make_pair_sum())
        reps = _names(g, repetition_vector(g))
        assert reps == {"src": 2, "pairsum": 1}

    def test_expander_contractor_chain(self):
        g = linear_program(make_ramp_source(1), make_expander(),
                           make_pair_sum())
        reps = _names(g, repetition_vector(g))
        assert reps == {"src": 1, "expand": 1, "pairsum": 1}

    def test_minimality(self):
        g = linear_program(make_ramp_source(3), make_pair_sum())
        reps = _names(g, repetition_vector(g))
        # 3 produced vs 2 consumed: minimal integers are 2 and 3.
        assert reps == {"src": 2, "pairsum": 3}

    def test_splitjoin_balance(self):
        g = flatten(Program("sj", pipeline(
            make_ramp_source(4),
            splitjoin(roundrobin_splitter([1, 1]),
                      [make_scaler(name="a"), make_expander()],
                      roundrobin_joiner([1, 2])),
            make_scaler(name="tail", pop=1),
        )))
        reps = repetition_vector(g)
        check_balanced(g, reps)

    def test_running_example_matches_paper(self):
        """Figure 2a's published repetition numbers."""
        from repro.apps.running_example import build
        g = flatten(build())
        reps = _names(g, repetition_vector(g))
        assert reps["A"] == 6
        assert reps["B0"] == reps["B3"] == 1
        assert reps["C0"] == reps["C2"] == 3
        assert reps["D"] == 6
        assert reps["E"] == 4
        assert reps["F"] == 4
        assert reps["G"] == 2
        assert reps["H"] == 2

    def test_empty_graph(self):
        assert repetition_vector(StreamGraph()) == {}

    def test_scaled_vector_still_balanced(self):
        g = linear_program(make_ramp_source(1), make_pair_sum())
        reps = repetition_vector(g)
        doubled = {aid: 2 * rep for aid, rep in reps.items()}
        check_balanced(g, doubled)

    def test_unbalanced_vector_detected(self):
        g = linear_program(make_ramp_source(1), make_pair_sum())
        reps = repetition_vector(g)
        reps[next(iter(reps))] *= 3
        with pytest.raises(RateError):
            check_balanced(g, reps)

    def test_zero_rate_tape_rejected(self):
        b = WorkBuilder()
        b.push(1.0)
        degenerate = FilterSpec("zero", pop=0, push=1)
        g = StreamGraph()
        a = g.add_actor(make_ramp_source(2))
        z = g.add_actor(FilterSpec("sink0", pop=0, push=1))
        g.add_tape(a.id, z.id)
        with pytest.raises(RateError):
            repetition_vector(g)
