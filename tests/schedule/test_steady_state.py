"""Tests for schedule construction."""

import pytest

from repro.schedule import RateError, build_schedule, repetition_vector

from ..conftest import linear_program, make_pair_sum, make_ramp_source


class TestBuildSchedule:
    def test_steady_phase_in_topological_order(self):
        g = linear_program(make_ramp_source(1), make_pair_sum())
        schedule = build_schedule(g)
        order = [aid for aid, _ in schedule.steady]
        assert order == g.topological_order()

    def test_steady_counts_match_reps(self):
        g = linear_program(make_ramp_source(1), make_pair_sum())
        schedule = build_schedule(g)
        assert dict(schedule.steady) == schedule.reps

    def test_init_phase_empty_without_peeking(self):
        g = linear_program(make_ramp_source(1), make_pair_sum())
        assert build_schedule(g).init == ()

    def test_prescaled_reps_accepted(self):
        g = linear_program(make_ramp_source(1), make_pair_sum())
        reps = {aid: rep * 4 for aid, rep in repetition_vector(g).items()}
        schedule = build_schedule(g, reps)
        assert schedule.steady_firings() == sum(reps.values())

    def test_unbalanced_reps_rejected(self):
        g = linear_program(make_ramp_source(1), make_pair_sum())
        reps = repetition_vector(g)
        reps[g.actor_by_name("src").id] += 1
        with pytest.raises(RateError):
            build_schedule(g, reps)

    def test_rep_of(self):
        g = linear_program(make_ramp_source(1), make_pair_sum())
        schedule = build_schedule(g)
        src = g.actor_by_name("src").id
        assert schedule.rep_of(src) == 2
