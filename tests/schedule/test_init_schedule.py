"""Tests for the peek-priming init schedule."""

import pytest

from repro.graph import FilterSpec
from repro.ir import WorkBuilder
from repro.schedule import init_counts, tape_residuals, verify_init_counts

from ..conftest import linear_program, make_ramp_source, make_scaler


def make_peeker(peek: int, pop: int = 1, name: str = "peeker") -> FilterSpec:
    """FIR-style peeking filter: output = sum of the peek window."""
    b = WorkBuilder()
    acc = b.let("acc", 0.0)
    with b.loop("i", 0, peek) as i:
        b.set(acc, acc + b.peek(i))
    b.push(acc)
    with b.loop("j", 0, pop):
        b.stmt(b.pop())
    return FilterSpec(name, pop=pop, push=1, peek=peek, work_body=b.build())


class TestResiduals:
    def test_non_peeking_graph_has_zero_residuals(self):
        g = linear_program(make_ramp_source(2), make_scaler())
        assert set(tape_residuals(g).values()) == {0}

    def test_peeking_consumer_residual(self):
        g = linear_program(make_ramp_source(2), make_peeker(peek=5))
        assert set(tape_residuals(g).values()) == {4}


class TestInitCounts:
    def test_no_peeking_no_init(self):
        g = linear_program(make_ramp_source(2), make_scaler())
        assert set(init_counts(g).values()) == {0}

    def test_source_primes_peeker(self):
        g = linear_program(make_ramp_source(2), make_peeker(peek=5))
        counts = init_counts(g)
        src = g.actor_by_name("src").id
        assert counts[src] == 2  # ceil(4 / 2)
        verify_init_counts(g, counts)

    def test_chained_peekers(self):
        g = linear_program(make_ramp_source(2),
                           make_peeker(peek=3, name="p1"),
                           make_peeker(peek=4, name="p2"))
        counts = init_counts(g)
        verify_init_counts(g, counts)
        # p1 must fire enough to leave 3 residual items for p2.
        p1 = g.actor_by_name("p1").id
        assert counts[p1] >= 3

    def test_verify_rejects_underflow(self):
        g = linear_program(make_ramp_source(2), make_peeker(peek=5))
        counts = init_counts(g)
        src = g.actor_by_name("src").id
        counts[src] = 0  # starve the peeker
        peeker = g.actor_by_name("peeker").id
        counts[peeker] = 1
        with pytest.raises(ValueError):
            verify_init_counts(g, counts)

    def test_verify_rejects_missing_residual(self):
        g = linear_program(make_ramp_source(2), make_peeker(peek=5))
        counts = init_counts(g)
        for aid in counts:
            counts[aid] = 0
        with pytest.raises(ValueError):
            verify_init_counts(g, counts)

    def test_deep_peek_window(self):
        g = linear_program(make_ramp_source(4),
                           make_peeker(peek=32, pop=2))
        counts = init_counts(g)
        verify_init_counts(g, counts)
