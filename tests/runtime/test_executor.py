"""Tests for whole-graph execution."""

import pytest

from repro.graph import (
    FilterSpec,
    Program,
    duplicate_splitter,
    flatten,
    pipeline,
    roundrobin_joiner,
    roundrobin_splitter,
    splitjoin,
)
from repro.ir import WorkBuilder
from repro.runtime import execute
from repro.simd.machine import CORE_I7

from ..conftest import (
    linear_program,
    make_accumulator,
    make_expander,
    make_pair_sum,
    make_ramp_source,
    make_scaler,
)


class TestLinearExecution:
    def test_scaler_doubles_the_ramp(self):
        g = linear_program(make_ramp_source(4), make_scaler(2.0))
        result = execute(g, iterations=2)
        assert result.outputs == [0.0, 2.0, 4.0, 6.0, 8.0, 10.0, 12.0, 14.0]

    def test_rate_mismatch_schedules_correctly(self):
        g = linear_program(make_ramp_source(1), make_pair_sum())
        result = execute(g, iterations=3)
        assert result.outputs == [1.0, 5.0, 9.0]  # (0+1), (2+3), (4+5)

    def test_expander(self):
        g = linear_program(make_ramp_source(1), make_expander())
        result = execute(g, iterations=2)
        assert result.outputs == [0.0, -0.0, 1.0, -1.0]

    def test_stateful_actor(self):
        g = linear_program(make_ramp_source(1), make_accumulator())
        result = execute(g, iterations=4)
        assert result.outputs == [0.0, 1.0, 3.0, 6.0]

    def test_outputs_scale_with_iterations(self):
        g = linear_program(make_ramp_source(4), make_scaler())
        assert len(execute(g, iterations=1).outputs) == 4
        assert len(execute(g, iterations=5).outputs) == 20


class TestSplitJoinExecution:
    def test_roundrobin_split_and_join(self):
        g = flatten(Program("sj", pipeline(
            make_ramp_source(2),
            splitjoin(roundrobin_splitter([1, 1]),
                      [make_scaler(10.0, name="s10"),
                       make_scaler(100.0, name="s100")],
                      roundrobin_joiner([1, 1])),
            make_scaler(1.0, name="tail"),
        )))
        result = execute(g, iterations=2)
        # Items 0,2 -> x10 branch; items 1,3 -> x100 branch.
        assert result.outputs == [0.0, 100.0, 20.0, 300.0]

    def test_duplicate_split(self):
        g = flatten(Program("dup", pipeline(
            make_ramp_source(1),
            splitjoin(duplicate_splitter(2),
                      [make_scaler(1.0, name="id"),
                       make_scaler(-1.0, name="neg")],
                      roundrobin_joiner([1, 1])),
            make_pair_sum(),
        )))
        result = execute(g, iterations=3)
        assert result.outputs == [0.0, 0.0, 0.0]  # x + (-x)

    def test_uneven_weights(self):
        g = flatten(Program("uneven", pipeline(
            make_ramp_source(3),
            splitjoin(roundrobin_splitter([2, 1]),
                      [make_scaler(1.0, name="a"),
                       make_scaler(0.0, name="b")],
                      roundrobin_joiner([2, 1])),
            make_scaler(1.0, name="tail"),
        )))
        result = execute(g, iterations=1)
        assert result.outputs == [0.0, 1.0, 0.0]


class TestPeekingExecution:
    def test_sliding_window(self):
        b = WorkBuilder()
        b.push(b.peek(0) + b.peek(1))
        b.stmt(b.pop())
        window = FilterSpec("win", pop=1, push=1, peek=2, work_body=b.build())
        g = linear_program(make_ramp_source(1), window)
        result = execute(g, iterations=4)
        # Init phase primes one item; steady output: consecutive sums.
        assert result.outputs == [1.0, 3.0, 5.0, 7.0]

    def test_init_outputs_separated(self):
        b = WorkBuilder()
        b.push(b.peek(3))
        b.stmt(b.pop())
        win = FilterSpec("win", pop=1, push=1, peek=4, work_body=b.build())
        g = linear_program(make_ramp_source(1), win)
        result = execute(g, iterations=2)
        assert len(result.outputs) == 2
        # init phase may produce items; they are reported separately
        assert isinstance(result.init_outputs, list)


class TestCounters:
    def test_steady_counters_exclude_init(self):
        b = WorkBuilder()
        b.push(b.peek(3))
        b.stmt(b.pop())
        win = FilterSpec("win", pop=1, push=1, peek=4, work_body=b.build())
        g = linear_program(make_ramp_source(1), win)
        result = execute(g, iterations=1)
        assert result.init_counters.total()["fire"] > 0
        assert result.steady_counters.total()["fire"] > 0

    def test_cycles_per_output_positive(self):
        g = linear_program(make_ramp_source(4), make_scaler())
        result = execute(g, iterations=2)
        assert result.cycles_per_output(CORE_I7) > 0

    def test_actor_cycles_cover_all_actors(self):
        g = linear_program(make_ramp_source(4), make_scaler())
        result = execute(g, iterations=1)
        assert set(result.actor_cycles(CORE_I7)) == set(g.actors)

    def test_deterministic_counters(self):
        g = linear_program(make_ramp_source(4), make_scaler())
        a = execute(g, iterations=2).steady_counters.total().events
        b = execute(g, iterations=2).steady_counters.total().events
        assert a == b
