"""Tests for the work-function interpreter (semantics + event charging)."""

import pytest

from repro.ir import FLOAT, INT, WorkBuilder, call
from repro.ir import expr as E
from repro.ir import lvalue as L
from repro.ir import stmt as S
from repro.ir.types import Vector
from repro.perf import PerfCounters
from repro.runtime import ActorRuntime, Interpreter, Tape
from repro.runtime.errors import InterpreterError


def run_body(body, inputs=(), state=None, sw=4, lane_ordered=False,
             has_sagu=False):
    """Execute one firing; returns (outputs, counters, runtime)."""
    tape_in = Tape("in")
    for item in inputs:
        tape_in.push(item)
    tape_out = Tape("out")
    rt = ActorRuntime(
        actor_id=0, simd_width=sw, counters=PerfCounters(),
        state=dict(state or {}), input=tape_in, output=tape_out,
        in_lane_ordered=lane_ordered, out_lane_ordered=lane_ordered,
        has_sagu=has_sagu)
    Interpreter(rt).run_work(body)
    return tape_out.drain(), rt.counters, rt


class TestScalarSemantics:
    def test_arithmetic_pipeline(self):
        b = WorkBuilder()
        x = b.let("x", b.pop())
        b.push(x * 2.0 + 1.0)
        out, _, _ = run_body(b.build(), [3.0])
        assert out == [7.0]

    def test_peek_and_pop(self):
        b = WorkBuilder()
        b.push(b.peek(2))
        b.push(b.pop())
        out, _, _ = run_body(b.build(), [10.0, 20.0, 30.0])
        assert out == [30.0, 10.0]

    def test_loop_execution(self):
        b = WorkBuilder()
        with b.loop("i", 0, 3) as i:
            b.push(i * 10)
        out, _, _ = run_body(b.build())
        assert out == [0, 10, 20]

    def test_if_else(self):
        b = WorkBuilder()
        x = b.let("x", b.pop())
        with b.if_(x.gt(0.0)):
            b.push(1.0)
        with b.orelse():
            b.push(-1.0)
        assert run_body(b.build(), [5.0])[0] == [1.0]
        assert run_body(b.build(), [-5.0])[0] == [-1.0]

    def test_arrays(self):
        b = WorkBuilder()
        a = b.array("a", FLOAT, 3, init=(1.0, 2.0, 3.0))
        b.set(a[1], a[0] + a[2])
        b.push(a[1])
        assert run_body(b.build())[0] == [4.0]

    def test_state_persists_across_firings(self):
        b = WorkBuilder()
        acc = b.var("acc")
        b.set(acc, acc + 1.0)
        b.push(acc)
        body = b.build()
        tape_out = Tape("out")
        rt = ActorRuntime(0, 4, PerfCounters(), {"acc": 0.0},
                          None, tape_out)
        interp = Interpreter(rt)
        interp.run_work(body)
        interp.run_work(body)
        assert tape_out.drain() == [1.0, 2.0]

    def test_locals_reset_between_firings(self):
        b = WorkBuilder()
        x = b.let("x", 0.0)
        b.set(x, x + 1.0)
        b.push(x)
        body = b.build()
        tape_out = Tape("out")
        rt = ActorRuntime(0, 4, PerfCounters(), {}, None, tape_out)
        interp = Interpreter(rt)
        interp.run_work(body)
        interp.run_work(body)
        assert tape_out.drain() == [1.0, 1.0]

    def test_math_calls(self):
        b = WorkBuilder()
        b.push(call("max", b.pop(), 0.0))
        assert run_body(b.build(), [-3.0])[0] == [0.0]

    def test_select(self):
        body = (S.Push(E.Select(E.Var("c").gt(0.0), E.FloatConst(1.0),
                                E.FloatConst(2.0))),)
        out, _, _ = run_body((S.DeclVar("c", FLOAT, E.Pop()),) + body, [5.0])
        assert out == [1.0]

    def test_undefined_variable_raises(self):
        b = WorkBuilder()
        b.push(b.var("ghost"))
        with pytest.raises(InterpreterError):
            run_body(b.build())


class TestVectorSemantics:
    def test_broadcast_and_elementwise(self):
        body = (
            S.DeclVar("v", Vector(FLOAT, 4), E.Broadcast(E.FloatConst(2.0), 4)),
            S.VPush(E.Var("v") * E.VectorConst((1.0, 2.0, 3.0, 4.0))),
        )
        out, _, _ = run_body(body)
        assert out == [[2.0, 4.0, 6.0, 8.0]]

    def test_lane_read_write(self):
        body = (
            S.DeclVar("v", Vector(FLOAT, 4), None),
            S.Assign(L.LaneLV("v", 2), E.FloatConst(9.0)),
            S.Push(E.Lane(E.Var("v"), 2)),
            S.Push(E.Lane(E.Var("v"), 0)),
        )
        out, _, _ = run_body(body)
        assert out == [9.0, 0.0]

    def test_vector_math_call(self):
        body = (S.VPush(E.call("abs", E.VectorConst((-1.0, 2.0, -3.0, 4.0)))),)
        out, _, _ = run_body(body)
        assert out == [[1.0, 2.0, 3.0, 4.0]]

    def test_vector_copy_semantics(self):
        body = (
            S.DeclVar("a", Vector(FLOAT, 4), E.Broadcast(E.FloatConst(1.0), 4)),
            S.DeclVar("b", Vector(FLOAT, 4), E.Var("a")),
            S.Assign(L.LaneLV("b", 0), E.FloatConst(5.0)),
            S.Push(E.Lane(E.Var("a"), 0)),
        )
        out, _, _ = run_body(body)
        assert out == [1.0]

    def test_vector_branch_condition_rejected(self):
        body = (S.If(E.VectorConst((1.0, 0.0, 1.0, 0.0)), (), ()),)
        with pytest.raises(InterpreterError):
            run_body(body)

    def test_vpush_of_scalar_rejected(self):
        body = (S.VPush(E.FloatConst(1.0)),)
        with pytest.raises(InterpreterError):
            run_body(body)


class TestGatherScatter:
    def test_gather_pop_lane_order(self):
        """Figure 3b: lane k reads offset k*stride; pointer advances 1."""
        body = (S.DeclVar("v", Vector(FLOAT, 4), E.GatherPop(stride=2)),
                S.VPush(E.Var("v")))
        inputs = list(range(8))
        out, _, rt = run_body(body, inputs)
        assert out == [[0, 2, 4, 6]]
        assert len(rt.input) == 7  # advanced by exactly one

    def test_gather_peek_with_offset(self):
        body = (S.VPush(E.GatherPeek(E.IntConst(1), stride=2)),)
        out, _, rt = run_body(body, list(range(8)))
        assert out == [[1, 3, 5, 7]]
        assert len(rt.input) == 8  # non-destructive

    def test_scatter_push_strided_layout(self):
        body = (S.ScatterPush(E.VectorConst((100, 101, 102, 103)), stride=2),
                S.ScatterPush(E.VectorConst((200, 201, 202, 203)), stride=2),
                S.AdvanceWriter(6))
        out, _, _ = run_body(body)
        assert out == [100, 200, 101, 201, 102, 202, 103, 203]

    def test_full_figure5_roundtrip(self):
        """Scatter then gather with the same stride is the identity over a
        full SW x stride block."""
        scatter = (S.ScatterPush(E.VectorConst((0, 4, 8, 12)), stride=4),
                   S.ScatterPush(E.VectorConst((1, 5, 9, 13)), stride=4),
                   S.ScatterPush(E.VectorConst((2, 6, 10, 14)), stride=4),
                   S.ScatterPush(E.VectorConst((3, 7, 11, 15)), stride=4),
                   S.AdvanceWriter(12))
        out, _, _ = run_body(scatter)
        assert out == list(range(16))

    def test_gather_strategy_costs_differ(self):
        scalar_body = (S.VPush(E.GatherPop(stride=4, strategy="scalar")),)
        permute_body = (S.VPush(E.GatherPop(stride=4, strategy="permute")),)
        _, scalar_counters, _ = run_body(scalar_body, list(range(16)))
        _, permute_counters, _ = run_body(permute_body, list(range(16)))
        assert scalar_counters["pack"] == 4
        assert permute_counters["pack"] == 0
        assert permute_counters["permute"] == 2  # lg2(4)

    def test_unknown_strategy_rejected(self):
        body = (S.VPush(E.GatherPop(stride=2, strategy="bogus")),)
        with pytest.raises(InterpreterError):
            run_body(body, list(range(8)))


class TestInternalBuffers:
    def test_push_pop_roundtrip(self):
        body = (
            S.InternalPush(0, E.FloatConst(1.5)),
            S.InternalPush(0, E.FloatConst(2.5)),
            S.Push(E.InternalPop(0)),
            S.Push(E.InternalPop(0)),
        )
        out, _, _ = run_body(body)
        assert out == [1.5, 2.5]

    def test_internal_peek(self):
        body = (
            S.InternalPush(1, E.FloatConst(7.0)),
            S.Push(E.InternalPeek(1, E.IntConst(0))),
            S.Push(E.InternalPop(1)),
        )
        out, _, _ = run_body(body)
        assert out == [7.0, 7.0]

    def test_underflow_detected(self):
        body = (S.Push(E.InternalPop(0)),)
        with pytest.raises(InterpreterError):
            run_body(body)

    def test_buffers_independent(self):
        body = (
            S.InternalPush(0, E.FloatConst(1.0)),
            S.InternalPush(1, E.FloatConst(2.0)),
            S.Push(E.InternalPop(1)),
            S.Push(E.InternalPop(0)),
        )
        out, _, _ = run_body(body)
        assert out == [2.0, 1.0]


class TestEventCharging:
    def test_fire_event_per_invocation(self):
        b = WorkBuilder()
        b.push(1.0)
        _, counters, _ = run_body(b.build())
        assert counters["fire"] == 1

    def test_loop_event_per_iteration(self):
        b = WorkBuilder()
        with b.loop("i", 0, 5):
            b.push(0.0)
        _, counters, _ = run_body(b.build())
        assert counters["loop"] == 5

    def test_scalar_vs_vector_alu(self):
        scalar = (S.Push(E.Var("x") + E.Var("x")),)
        _, counters, _ = run_body((S.DeclVar("x", FLOAT, E.FloatConst(1.0)),)
                                  + scalar)
        assert counters["s_alu"] == 1
        vector = (S.DeclVar("v", Vector(FLOAT, 4),
                            E.Broadcast(E.FloatConst(1.0), 4)),
                  S.VPush(E.Var("v") + E.Var("v")))
        _, counters, _ = run_body(vector)
        assert counters["v_alu"] == 1

    def test_mul_div_classified(self):
        body = (S.DeclVar("x", FLOAT, E.Pop()),
                S.Push(E.Var("x") * E.Var("x") / E.Var("x")))
        _, counters, _ = run_body(body, [2.0])
        assert counters["s_mul"] == 1
        assert counters["s_div"] == 1

    def test_math_event_named_by_function(self):
        b = WorkBuilder()
        b.push(call("sin", b.pop()))
        _, counters, _ = run_body(b.build(), [1.0])
        assert counters["m_sin"] == 1

    def test_lane_ordered_scalar_access_charges_addr(self):
        b = WorkBuilder()
        b.push(b.pop())
        _, counters, _ = run_body(b.build(), [1.0], lane_ordered=True)
        assert counters["addr"] == 2  # one pop + one push

    def test_lane_ordered_with_sagu_charges_sagu(self):
        b = WorkBuilder()
        b.push(b.pop())
        _, counters, _ = run_body(b.build(), [1.0], lane_ordered=True,
                                  has_sagu=True)
        assert counters["sagu"] == 2
        assert counters["addr"] == 0

    def test_cost_annotation(self):
        body = (S.CostAnnotation("s_alu", 7),)
        _, counters, _ = run_body(body)
        assert counters["s_alu"] == 7
