"""Unit tests for the compiled execution backend itself: kernel caching,
typed constant abstraction, shape-guard behaviour, and backend plumbing."""

import pytest

from repro.graph import FilterSpec, Program, StateVar, flatten, pipeline, splitjoin
from repro.graph.builtins import duplicate_splitter, roundrobin_joiner
from repro.ir import FLOAT, WorkBuilder
from repro.ir.structhash import isomorphic
from repro.runtime import execute, resolve_backend
from repro.runtime.backends import InterpreterBackend
from repro.runtime.compiled import (
    CompiledBackend,
    KernelCache,
    typed_canonicalize,
)
from repro.runtime.errors import StreamRuntimeError
from repro.simd.machine import CORE_I7

from ..conftest import make_ramp_source, make_scaler


def _scaler_graph(*factors):
    """Source feeding a duplicate split-join of one scaler per factor."""
    branches = [make_scaler(f, name=f"scale{i}")
                for i, f in enumerate(factors)]
    if len(branches) == 1:
        return flatten(Program(
            "scalers", pipeline(make_ramp_source(4), branches[0])))
    sj = splitjoin(duplicate_splitter(len(branches)), branches,
                   roundrobin_joiner([1] * len(branches)))
    return flatten(Program(
        "scalers",
        pipeline(make_ramp_source(4), sj, make_scaler(1.0, name="tail"))))


class TestKernelSharing:
    def test_structhash_equal_actors_compile_once(self):
        """Four scalers differing only in their constant share one kernel."""
        specs = [make_scaler(f) for f in (2.0, 3.0, 5.0, 7.0)]
        for a in specs[1:]:
            assert isomorphic(specs[0].work_body, a.work_body)
        graph = _scaler_graph(2.0, 3.0, 5.0, 7.0)
        backend = CompiledBackend()
        execute(graph, backend=backend, iterations=1)
        stats = backend.cache.stats
        # 6 filters (source + 4 scalers + tail scaler), one init and one
        # work lookup each.
        assert stats.lookups == 12
        # Distinct kernels actually compiled: the shared scaler work body,
        # the source work body, and the (empty) init bodies of the
        # stateless scalers resp. the stateful source.  Everything else —
        # in particular the 2nd..4th scalers and the tail — must hit.
        assert stats.compiled == 4
        assert stats.hits == 8
        scaler_canon = typed_canonicalize(specs[0].work_body).body
        compiled_bodies = [body for body, _ in backend.cache._kernels]
        assert compiled_bodies.count(scaler_canon) == 1

    def test_cache_persists_across_executions(self):
        graph = _scaler_graph(2.0, 3.0)
        backend = CompiledBackend()
        execute(graph, backend=backend, iterations=1)
        compiled_first = backend.cache.stats.compiled
        execute(graph, backend=backend, iterations=1)
        assert backend.cache.stats.compiled == compiled_first
        assert backend.cache.stats.hits > compiled_first

    def test_distinct_structures_do_not_collide(self):
        """A scaler and an adder must not share a kernel."""
        b = WorkBuilder()
        with b.loop("i", 0, 1):
            b.push(b.pop() + 2.0)
        adder = FilterSpec("adder", pop=1, push=1, work_body=b.build())
        scaler = make_scaler(2.0)
        assert not isomorphic(scaler.work_body, adder.work_body)
        graph = flatten(Program("mix", pipeline(
            make_ramp_source(4), scaler, adder)))
        backend = CompiledBackend()
        result = execute(graph, backend=backend, iterations=2)
        ref = execute(graph, iterations=2)
        assert result.outputs == ref.outputs


class TestTypedConstants:
    def test_int_and_float_constants_stay_distinct(self):
        """C semantics: 7 / 2 == 3 but 7.0 / 2.0 == 3.5.  A cache keyed on
        the float-coerced structhash canonical form would conflate the two
        bodies; the typed canonicalisation must not."""
        def div_spec(value, name):
            b = WorkBuilder()
            b.push(b.pop() / value)
            return FilterSpec(name, pop=1, push=1, work_body=b.build())

        int_div = div_spec(2, "intdiv")
        float_div = div_spec(2.0, "floatdiv")
        assert isomorphic(int_div.work_body, float_div.work_body)

        b = WorkBuilder()
        t = b.var("t")
        b.push(t)
        b.set(t, t + 1)
        int_src = FilterSpec("isrc", pop=0, push=1,
                             state=(StateVar("t", FLOAT, 0, 7),),
                             work_body=b.build())
        for spec in (int_div, float_div):
            graph = flatten(Program("div", pipeline(int_src, spec)))
            ref = execute(graph, iterations=4)
            got = execute(graph, iterations=4, backend=CompiledBackend())
            assert got.outputs == ref.outputs

    def test_canonical_consts_preserve_types(self):
        b = WorkBuilder()
        b.push(b.pop() / 2)
        canon_int = typed_canonicalize(b.build())
        b2 = WorkBuilder()
        b2.push(b2.pop() / 2.0)
        canon_float = typed_canonicalize(b2.build())
        assert canon_int.body == canon_float.body  # structurally shared
        # NB: (2,) == (2.0,) in Python — the *types* carry the semantics.
        assert type(canon_int.consts[0]) is int
        assert type(canon_float.consts[0]) is float


class TestBackendResolution:
    def test_strings_resolve(self):
        assert isinstance(resolve_backend("interp"), InterpreterBackend)
        assert resolve_backend("compiled").name == "compiled"

    def test_compiled_string_is_singleton(self):
        assert resolve_backend("compiled") is resolve_backend("compiled")

    def test_object_passthrough(self):
        backend = CompiledBackend(cache=KernelCache())
        assert resolve_backend(backend) is backend

    def test_unknown_backend_raises(self):
        with pytest.raises(StreamRuntimeError, match="unknown backend"):
            execute(_scaler_graph(2.0), backend="jit")

    def test_result_records_backend(self):
        graph = _scaler_graph(2.0)
        assert execute(graph, iterations=1).backend == "interp"
        assert execute(graph, iterations=1,
                       backend="compiled").backend == "compiled"


class TestBoundedCacheEviction:
    def test_max_kernels_validation(self):
        with pytest.raises(ValueError, match="max_kernels"):
            KernelCache(max_kernels=0)
        assert KernelCache(max_kernels=1).max_kernels == 1
        assert KernelCache().max_kernels is None

    def test_fifo_eviction_under_bound(self):
        """A bounded cache evicts the oldest insertion and recompiles it on
        the next lookup; an unbounded cache never evicts."""
        cache = KernelCache(max_kernels=2)
        backend = CompiledBackend(cache=cache)
        graph = _scaler_graph(2.0)  # source + scaler: 4 distinct kernels
        result = execute(graph, backend=backend, iterations=1)
        assert result.outputs == execute(graph, iterations=1).outputs
        assert len(cache) == 2  # residency respects the bound
        assert cache.stats.evictions == cache.stats.compiled - 2
        assert cache.stats.evictions > 0
        # Re-running recompiles evicted kernels: compiled keeps growing.
        before = cache.stats.compiled
        execute(graph, backend=backend, iterations=1)
        assert cache.stats.compiled > before
        assert len(cache) == 2

    def test_unbounded_cache_never_evicts(self):
        backend = CompiledBackend(cache=KernelCache())
        execute(_scaler_graph(2.0, 3.0), backend=backend, iterations=1)
        assert backend.cache.stats.evictions == 0
        assert len(backend.cache) == backend.cache.stats.compiled
