"""Tests for scalar value semantics (C-like arithmetic)."""

import math

import pytest

from repro.runtime.values import (
    apply_binary,
    apply_math,
    apply_unary,
    copy_value,
    is_vector_value,
    splat,
)


class TestArithmetic:
    def test_float_division(self):
        assert apply_binary("/", 7.0, 2.0) == 3.5

    def test_int_division_truncates_toward_zero(self):
        assert apply_binary("/", 7, 2) == 3
        assert apply_binary("/", -7, 2) == -3  # C semantics, not Python's -4

    def test_int_modulo_matches_c(self):
        assert apply_binary("%", 7, 3) == 1
        assert apply_binary("%", -7, 3) == -1  # C: sign of dividend

    def test_float_modulo(self):
        assert apply_binary("%", 7.5, 2.0) == pytest.approx(1.5)

    def test_shifts_and_bitwise(self):
        assert apply_binary("<<", 3, 2) == 12
        assert apply_binary(">>", 12, 2) == 3
        assert apply_binary("&", 12, 10) == 8
        assert apply_binary("|", 12, 10) == 14
        assert apply_binary("^", 12, 10) == 6

    def test_comparisons(self):
        assert apply_binary("<", 1, 2) is True
        assert apply_binary(">=", 2, 2) is True
        assert apply_binary("==", 1.0, 1.0) is True
        assert apply_binary("!=", 1.0, 1.0) is False

    def test_logical(self):
        assert apply_binary("&&", 1.0, 0.0) is False
        assert apply_binary("||", 0.0, 2.0) is True

    def test_unary(self):
        assert apply_unary("-", 3.0) == -3.0
        assert apply_unary("!", 0.0) is True
        assert apply_unary("~", 5) == -6

    def test_unknown_operator(self):
        with pytest.raises(ValueError):
            apply_binary("**", 1, 2)


class TestMath:
    def test_sqrt(self):
        assert apply_math("sqrt", [9.0]) == 3.0

    def test_min_max(self):
        assert apply_math("min", [3.0, 1.0]) == 1.0
        assert apply_math("max", [3.0, 1.0]) == 3.0

    def test_trig_matches_libm(self):
        assert apply_math("sin", [0.5]) == math.sin(0.5)
        assert apply_math("atan2", [1.0, 2.0]) == math.atan2(1.0, 2.0)

    def test_int_cast_truncates(self):
        assert apply_math("int", [2.9]) == 2
        assert apply_math("int", [-2.9]) == -2

    def test_floor_returns_float(self):
        assert apply_math("floor", [2.9]) == 2.0
        assert isinstance(apply_math("floor", [2.9]), float)

    def test_unknown_intrinsic(self):
        with pytest.raises(ValueError):
            apply_math("mystery", [1.0])


class TestVectorValues:
    def test_splat(self):
        assert splat(1.5, 4) == [1.5, 1.5, 1.5, 1.5]

    def test_is_vector_value(self):
        assert is_vector_value([1, 2])
        assert not is_vector_value(3.0)

    def test_copy_value_copies_vectors(self):
        v = [1, 2, 3]
        c = copy_value(v)
        c[0] = 99
        assert v[0] == 1

    def test_copy_value_passes_scalars(self):
        assert copy_value(2.0) == 2.0
