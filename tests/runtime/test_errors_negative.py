"""Negative-path coverage for the runtime error surface.

``test_tape.py`` and ``test_failure_injection.py`` prove the errors fire
during execution; this file pins down the *contract*: the exception
hierarchy callers catch against, the messages they triage with, and
``resolve_backend``'s rejection of unknown engine names."""

from __future__ import annotations

import pytest

from repro.runtime import Tape, execute, resolve_backend
from repro.runtime.errors import (InterpreterError, StreamRuntimeError,
                                  TapeUnderflow, UninitializedRead)

from ..conftest import linear_program, make_ramp_source, make_scaler


class TestHierarchy:
    """Every runtime error must be catchable as StreamRuntimeError."""

    @pytest.mark.parametrize("exc_type", [
        TapeUnderflow, UninitializedRead, InterpreterError])
    def test_subclasses_base(self, exc_type):
        assert issubclass(exc_type, StreamRuntimeError)
        assert issubclass(exc_type, Exception)

    def test_leaf_types_are_distinct(self):
        # Catching TapeUnderflow must not swallow interpreter bugs.
        assert not issubclass(InterpreterError, TapeUnderflow)
        assert not issubclass(TapeUnderflow, UninitializedRead)

    def test_catch_as_base(self):
        tape = Tape()
        with pytest.raises(StreamRuntimeError):
            tape.pop()


class TestMessages:
    def test_underflow_mentions_counts(self):
        tape = Tape()
        tape.push(1.0)
        with pytest.raises(TapeUnderflow):
            tape.peek(3)

    def test_interpreter_error_on_undeclared_variable(self):
        from repro.graph import FilterSpec
        from repro.ir import WorkBuilder
        b = WorkBuilder()
        b.push(b.var("ghost"))  # never declared, no state
        bad = FilterSpec("ghost_user", pop=0, push=1, work_body=b.build())
        graph = linear_program(bad)
        with pytest.raises(InterpreterError):
            execute(graph, iterations=1)


class TestResolveBackend:
    def test_unknown_backend_name_rejected(self):
        with pytest.raises(StreamRuntimeError, match="unknown backend"):
            resolve_backend("jit")

    def test_error_message_lists_valid_names(self):
        with pytest.raises(StreamRuntimeError,
                           match="interp.*compiled"):
            resolve_backend("turbo")

    def test_execute_propagates_unknown_backend(self):
        graph = linear_program(make_ramp_source(2), make_scaler())
        with pytest.raises(StreamRuntimeError):
            execute(graph, iterations=1, backend="nope")

    @pytest.mark.parametrize("name", ["interp", "compiled"])
    def test_known_names_resolve(self, name):
        assert resolve_backend(name).name == name

    def test_backend_objects_pass_through(self):
        obj = resolve_backend("interp")
        assert resolve_backend(obj) is obj
