"""The vector backend's fallback contract.

A batch kernel is only built when the whole work body is provably
batchable; everything else — non-affine state updates, data-dependent
control flow or array indexing, inexact intrinsics — must route to the
per-firing compiled-closure path, be *recorded* as a fallback with its
reason, and still be bit-identical to the interpreter.  These tests pin
the routing decisions (per actor, through ``ExecutionResult.vectorized``
and ``build_batch_kernel`` directly) and the mixed-mode parity.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.apps.registry import get_benchmark
from repro.apps.sources import checksum_sink, lcg_source, ramp_source
from repro.graph.actor import FilterSpec, StateVar
from repro.graph.flatten import flatten
from repro.graph.structure import Program, pipeline
from repro.ir import FLOAT, INT, WorkBuilder
from repro.perf.counters import PerActorCounters
from repro.runtime import execute
from repro.runtime.errors import StreamRuntimeError
from repro.runtime.interpreter import ActorRuntime
from repro.runtime.tape import Tape
from repro.runtime.vector.kernel import Unvectorizable, build_batch_kernel
from repro.simd.machine import CORE_I7


def _runtime(spec, data=(), width=4):
    from repro.runtime.executor import state_initial_value
    counters = PerActorCounters()
    inp, out = Tape("in"), Tape("out")
    for item in data:
        inp.push(item)
    return ActorRuntime(
        actor_id=0, simd_width=width, counters=counters.for_actor(0),
        state={var.name: state_initial_value(var, width)
               for var in spec.state},
        input=inp if spec.pop or spec.peek else None,
        output=out, in_lane_ordered=False, out_lane_ordered=False,
        has_sagu=False)


def _build(spec, data=()):
    return build_batch_kernel(_runtime(spec, data), spec, False)


class TestBuildDecisions:
    def test_stateless_elementwise_vectorizes(self):
        b = WorkBuilder()
        b.push(b.pop() * 2.0 + 1.0)
        spec = FilterSpec("f", pop=1, push=1, work_body=b.build())
        kernel = _build(spec)
        assert kernel.a_in == 1 and kernel.a_out == 1

    def test_affine_counter_state_vectorizes(self):
        kernel = _build(ramp_source("ramp", push=4))
        assert kernel.a_in == 0 and kernel.a_out == 4

    def test_peeking_window_vectorizes(self):
        b = WorkBuilder()
        b.push(b.peek(0) + b.peek(3))
        b.stmt(b.pop())
        spec = FilterSpec("win", pop=1, push=1, peek=4, work_body=b.build())
        kernel = _build(spec)
        assert kernel.need == 4  # window of 4 beyond each firing's base

    def test_nonaffine_state_falls_back(self):
        with pytest.raises(Unvectorizable) as exc:
            _build(lcg_source("src", push=4))
        assert "state" in str(exc.value)

    def test_stateful_accumulator_falls_back(self):
        # acc folds popped data into state: the update is data-dependent,
        # not affine in the firing index.
        with pytest.raises(Unvectorizable):
            _build(checksum_sink("sink", pop=4))

    def test_data_dependent_branch_falls_back(self):
        b = WorkBuilder()
        x = b.let("x", b.pop())
        with b.if_(x.gt(0.0)):
            b.push(x)
        with b.orelse():
            b.push(0.0 - x)
        spec = FilterSpec("absif", pop=1, push=1, work_body=b.build())
        with pytest.raises(Unvectorizable) as exc:
            _build(spec)
        assert "branch" in str(exc.value)

    def test_data_dependent_array_index_falls_back(self):
        from repro.ir import ArrayHandle
        b = WorkBuilder()
        delay = ArrayHandle("delay")
        ph = b.var("ph")
        b.push(delay[ph])
        b.set(delay[ph], b.pop())
        b.set(ph, (ph + 1) % 4)
        spec = FilterSpec(
            "delay", pop=1, push=1,
            state=(StateVar("delay", FLOAT, 4, 0.0),
                   StateVar("ph", INT, 0, 0)),
            work_body=b.build())
        with pytest.raises(Unvectorizable):
            _build(spec)

    def test_pow_falls_back(self):
        from repro.ir import call
        b = WorkBuilder()
        b.push(call("pow", b.pop(), 2.0))
        spec = FilterSpec("p", pop=1, push=1, work_body=b.build())
        with pytest.raises(Unvectorizable):
            _build(spec)


class TestRuntimeRouting:
    """End-to-end: the executor records which path each actor took."""

    def _mixed_graph(self):
        # ramp (vectorizes, affine state) -> lcg-mix (falls back,
        # non-affine state) is impossible in one pipeline since lcg pops
        # nothing; instead: ramp -> doubler (vector) -> checksum
        # (fallback, data-folding state).
        b = WorkBuilder()
        with b.loop("i", 0, 8):
            b.push(b.pop() * 2.0)
        doubler = FilterSpec("doubler", pop=8, push=8, work_body=b.build())
        return flatten(Program("mixed", pipeline(
            ramp_source("ramp", push=8), doubler,
            checksum_sink("sink", pop=8))))

    def test_mixed_graph_reports_both_modes(self):
        graph = self._mixed_graph()
        result = execute(graph, iterations=3, backend="vector")
        statuses = {graph.actors[a].name: v
                    for a, v in result.vectorized.items()}
        assert statuses["ramp"] == "vector"
        assert statuses["doubler"] == "vector"
        assert statuses["sink"].startswith("fallback: ")

    def test_mixed_graph_passes_parity(self):
        graph = self._mixed_graph()
        ref = execute(graph, iterations=3, backend="interp")
        got = execute(graph, iterations=3, backend="vector")
        assert got.outputs == ref.outputs
        assert {a: dict(c.events) for a, c in
                got.steady_counters.by_actor.items()} == \
               {a: dict(c.events) for a, c in
                ref.steady_counters.by_actor.items()}

    def test_running_example_mixes_modes(self):
        graph = flatten(get_benchmark("RunningExample"))
        result = execute(graph, machine=CORE_I7, iterations=2,
                         backend="vector")
        modes = set()
        for status in result.vectorized.values():
            modes.add("vector" if status.startswith("vector")
                      else "fallback")
        assert modes == {"vector", "fallback"}

    def test_fallback_reasons_are_recorded(self):
        graph = flatten(get_benchmark("RunningExample"))
        result = execute(graph, iterations=1, backend="vector")
        reasons = [v for v in result.vectorized.values()
                   if v.startswith("fallback: ")]
        assert reasons
        assert all(len(r) > len("fallback: ") for r in reasons)

    def test_backend_vector_stats_accumulate(self):
        from repro.runtime.vector import VectorBackend
        backend = VectorBackend()
        graph = self._mixed_graph()
        execute(graph, iterations=1, backend=backend)
        assert backend.vector_stats["vector"] == 2
        assert backend.vector_stats["fallback"] == 1


class TestNumpyGate:
    def test_resolve_backend_vector_without_numpy(self, monkeypatch):
        import repro.runtime.backends as backends
        import repro.runtime.vector.np_compat as np_compat
        monkeypatch.setattr(np_compat, "HAVE_NUMPY", False)
        monkeypatch.setattr(backends, "_VECTOR_SINGLETON", None)
        with pytest.raises(StreamRuntimeError, match="numpy"):
            backends.resolve_backend("vector")

    def test_vector_backend_ctor_without_numpy(self, monkeypatch):
        import repro.runtime.vector.backend as vb
        monkeypatch.setattr(vb, "HAVE_NUMPY", False)
        with pytest.raises(StreamRuntimeError, match="numpy"):
            vb.VectorBackend()

    def test_unknown_backend_message_names_vector(self):
        from repro.runtime.backends import resolve_backend
        with pytest.raises(StreamRuntimeError, match="vector"):
            resolve_backend("nope")


class TestBatchKernelRuntimeGuards:
    """A built kernel re-validates per batch and returns False (nothing
    committed) instead of committing a wrong batch."""

    def _spec(self):
        b = WorkBuilder()
        b.push(b.pop() * 2.0)
        return FilterSpec("dbl", pop=1, push=1, work_body=b.build())

    def test_insufficient_input_refuses(self):
        spec = self._spec()
        rt = _runtime(spec, data=[1.0, 2.0])
        kernel = build_batch_kernel(rt, spec, False)
        assert kernel.run(rt, 8) is False
        assert len(rt.input) == 2  # nothing consumed
        assert len(rt.output) == 0

    def test_type_drift_refuses(self):
        spec = self._spec()
        rt = _runtime(spec, data=[1.0, "oops", 3.0])
        kernel = build_batch_kernel(rt, spec, False)
        assert kernel.run(rt, 3) is False
        assert len(rt.output) == 0

    def test_clean_batch_commits(self):
        spec = self._spec()
        rt = _runtime(spec, data=[1.0, 2.0, 3.0])
        kernel = build_batch_kernel(rt, spec, False)
        assert kernel.run(rt, 3) is True
        assert rt.output.drain() == [2.0, 4.0, 6.0]
        assert len(rt.input) == 0
