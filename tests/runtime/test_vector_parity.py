"""Differential testing: interpreter vs. vector backend.

The vector backend batches many firings into whole-array numpy kernels,
falling back per actor to the compiled path when a work body is not
provably vectorizable.  Its contract is the same as the compiled
backend's — *bit-identical observable behaviour*: for every application
in the registry, across every SIMDization option set and every
registered machine, at 1 and 3 steady iterations, it must produce

* identical steady-state and init-phase outputs,
* identical per-actor performance-event bags for both phases,

and repeated vector runs must be deterministic.  Any divergence is a
miscompiled batch kernel (or a fallback that should have fired), never a
tolerance question.
"""

import pytest

np = pytest.importorskip("numpy")

from repro.apps.registry import BENCHMARKS, get_benchmark
from repro.fuzz.harness import OPTION_SETS
from repro.graph.flatten import flatten
from repro.runtime import execute
from repro.simd.machine import CORE_I7, CORE_I7_SAGU, NEON_LIKE, SVE_LIKE
from repro.simd.pipeline import compile_graph

ALL_BENCHMARKS = sorted(BENCHMARKS)

MACHINES = (CORE_I7, CORE_I7_SAGU, NEON_LIKE, SVE_LIKE)

ITERATIONS = (1, 3)


def _counter_bags(per_actor):
    return {
        actor_id: {event: count
                   for event, count in counters.events.items() if count}
        for actor_id, counters in per_actor.by_actor.items()
        if any(counters.events.values())
    }


def assert_vector_agrees(graph, machine, iterations):
    ref = execute(graph, machine=machine, iterations=iterations,
                  backend="interp")
    got = execute(graph, machine=machine, iterations=iterations,
                  backend="vector")
    assert got.backend == "vector"
    assert got.outputs == ref.outputs
    assert got.init_outputs == ref.init_outputs
    assert _counter_bags(got.init_counters) == _counter_bags(ref.init_counters)
    assert _counter_bags(got.steady_counters) == \
        _counter_bags(ref.steady_counters)
    assert got.steady_cycles(machine) == ref.steady_cycles(machine)
    return ref, got


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
class TestFullMatrix:
    """Every app × every option set × every machine × 1 and 3 iterations."""

    def test_parity_across_options_machines_iterations(self, name):
        scalar = flatten(get_benchmark(name))
        checked = 0
        for machine in MACHINES:
            for opt_name, options in OPTION_SETS.items():
                if opt_name == "scalar" and machine is not CORE_I7:
                    continue  # option-independent graph, one machine enough
                graph = compile_graph(scalar, machine, options).graph
                for iterations in ITERATIONS:
                    assert_vector_agrees(graph, machine, iterations)
                    checked += 1
        assert checked == (1 + 4 * (len(OPTION_SETS) - 1)) * len(ITERATIONS)


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
class TestDeterminism:
    def test_repeated_vector_runs_identical(self, name):
        graph = compile_graph(flatten(get_benchmark(name)), CORE_I7).graph
        first = execute(graph, machine=CORE_I7, iterations=2,
                        backend="vector")
        second = execute(graph, machine=CORE_I7, iterations=2,
                         backend="vector")
        assert first.outputs == second.outputs
        assert first.init_outputs == second.init_outputs
        assert _counter_bags(first.steady_counters) == \
            _counter_bags(second.steady_counters)
        assert first.vectorized == second.vectorized


class TestNonVacuous:
    """The matrix above only means something if kernels actually engage."""

    def test_fmradio_vectorizes_and_produces_output(self):
        graph = compile_graph(flatten(get_benchmark("FMRadio")),
                              CORE_I7).graph
        ref, got = assert_vector_agrees(graph, CORE_I7, 3)
        assert ref.outputs
        assert got.vectorized is not None
        assert any(v == "vector" for v in got.vectorized.values())

    def test_stream_apps_fully_vectorize(self):
        for name in ("StreamCopy", "StreamScale", "StreamAdd",
                     "StreamTriad"):
            graph = flatten(get_benchmark(name))
            _, got = assert_vector_agrees(graph, CORE_I7, 3)
            assert got.vectorized
            assert all(v.startswith("vector")
                       for v in got.vectorized.values()), got.vectorized

    def test_vectorized_reporting_only_on_vector_backend(self):
        graph = flatten(get_benchmark("StreamCopy"))
        assert execute(graph, iterations=1,
                       backend="interp").vectorized is None
        assert execute(graph, iterations=1,
                       backend="compiled").vectorized is None
        assert execute(graph, iterations=1,
                       backend="vector").vectorized is not None
