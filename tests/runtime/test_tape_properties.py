"""Differential property suite: NdTape vs the list Tape.

The ndarray-native tape must be *observably identical* to the list tape —
same values (and Python types), same lengths, same error types and
messages — across the full repertoire, including rpush gaps, strided
writes, drain, dtype transitions, degradation to list storage, and
compaction boundaries.  Seeded random op sequences are replayed against
both implementations and every single outcome is compared.
"""

from __future__ import annotations

import random

import pytest

from repro.runtime.errors import TapeUnderflow, UninitializedRead
from repro.runtime import tape as tape_mod
from repro.runtime.tape import HAVE_NUMPY, NdTape, Tape

pytestmark = pytest.mark.skipif(not HAVE_NUMPY,
                                reason="numpy not installed ([vector] extra)")


# -- canonicalization ---------------------------------------------------------

def canon(value):
    """Type-tagged canonical form: 1 and 1.0 must NOT compare equal."""
    if isinstance(value, list):
        return ("list", tuple(canon(v) for v in value))
    return (type(value).__name__, repr(value))


def apply_op(tape, op):
    """Run one op; return a canonical (outcome) tuple incl. typed errors."""
    name = op[0]
    try:
        if name == "push":
            tape.push(op[1])
            return ("ok",)
        if name == "pop":
            return ("ok", canon(tape.pop()))
        if name == "peek":
            return ("ok", canon(tape.peek(op[1])))
        if name == "peek_block":
            return ("ok", canon(tape.peek_block(op[1])))
        if name == "rpush":
            tape.rpush(op[1], op[2])
            return ("ok",)
        if name == "advance_writer":
            tape.advance_writer(op[1])
            return ("ok",)
        if name == "advance_reader":
            tape.advance_reader(op[1])
            return ("ok",)
        if name == "write_strided":
            tape.write_strided(op[1], op[2], list(op[3]))
            return ("ok",)
        if name == "drain":
            return ("ok", canon(tape.drain()))
        if name == "len":
            return ("ok", len(tape))
        raise AssertionError(f"unknown op {name!r}")
    except (TapeUnderflow, UninitializedRead, ValueError) as exc:
        return ("err", type(exc).__name__, str(exc))


# -- random op sequences ------------------------------------------------------

_VALUES = [0, 1, -3, 7, 12345, 2 ** 40, 2 ** 60, 2 ** 64,
           0.0, 2.5, -0.5, 1e300, -1e-9, float("nan"), float("inf"),
           [1.0, 2.0], [3, 4.5]]


def random_op(rng: random.Random):
    roll = rng.random()
    value = rng.choice(_VALUES)
    if roll < 0.30:
        return ("push", value)
    if roll < 0.45:
        return ("pop",)
    if roll < 0.55:
        return ("peek", rng.randrange(0, 6))
    if roll < 0.62:
        return ("peek_block", rng.randrange(0, 8))
    if roll < 0.72:
        return ("rpush", value, rng.randrange(0, 6))
    if roll < 0.82:
        return ("advance_writer", rng.randrange(0, 6))
    if roll < 0.90:
        return ("advance_reader", rng.randrange(0, 4))
    if roll < 0.97:
        count = rng.randrange(1, 5)
        values = tuple(rng.choice(_VALUES) for _ in range(count))
        return ("write_strided", rng.randrange(0, 4),
                rng.randrange(1, 4), values)
    return ("drain",)


def replay_differential(ops):
    """Replay ``ops`` on both tapes, asserting identical outcomes and
    identical lengths after every op."""
    plain = Tape("x")
    nd = NdTape("x")
    for step, op in enumerate(ops):
        a = apply_op(plain, op)
        b = apply_op(nd, op)
        assert a == b, (f"step {step}: {op!r}\n  list tape: {a!r}\n"
                        f"  nd tape:   {b!r}")
        assert len(plain) == len(nd), (step, op)
    return plain, nd


@pytest.mark.parametrize("seed", range(30))
def test_random_op_sequences_match(seed):
    rng = random.Random(seed)
    replay_differential([random_op(rng) for _ in range(250)])


@pytest.mark.parametrize("seed", range(30, 40))
def test_random_op_sequences_match_with_tiny_compaction(seed, monkeypatch):
    """Same differential property with the compaction threshold pulled
    down to 8, so sequences constantly cross the compaction boundary
    (in-place ndarray compaction vs list prefix deletion)."""
    monkeypatch.setattr(tape_mod, "_COMPACT_THRESHOLD", 8)
    rng = random.Random(seed)
    replay_differential([random_op(rng) for _ in range(400)])


# -- pinned scenarios ---------------------------------------------------------

def test_rpush_gap_then_advance_reports_first_hole():
    ops = [("rpush", 1.0, 0), ("rpush", 2.0, 2), ("advance_writer", 3)]
    plain, nd = replay_differential(ops)
    with pytest.raises(UninitializedRead, match="unwritten slot 1"):
        nd.advance_writer(3)
    with pytest.raises(UninitializedRead, match="unwritten slot 1"):
        plain.advance_writer(3)


def test_rpush_gap_filled_then_committed():
    replay_differential([
        ("rpush", 1.0, 0), ("rpush", 3.0, 2), ("rpush", 2.0, 1),
        ("advance_writer", 3), ("pop",), ("pop",), ("pop",), ("pop",),
    ])


def test_strided_writes_interleave_exactly():
    replay_differential([
        ("write_strided", 0, 2, (1.0, 2.0, 3.0)),
        ("write_strided", 1, 2, (10.0, 20.0, 30.0)),
        ("advance_writer", 6),
        ("peek_block", 6), ("drain",),
    ])


def test_underflow_messages_match_exactly():
    for op in [("pop",), ("peek", 2), ("peek_block", 3),
               ("advance_reader", 1)]:
        plain, nd = Tape("t"), NdTape("t")
        assert apply_op(plain, op) == apply_op(nd, op)
        assert apply_op(plain, op)[0] == "err"


def test_int_stays_int_float_stays_float():
    _, nd = replay_differential([
        ("push", 1), ("push", 2.0), ("push", 3),
        ("pop",), ("pop",), ("pop",)])
    assert nd.dtype_kind is None  # fully drained -> dtype reset


def test_compaction_boundary_exact(monkeypatch):
    """Pin behaviour exactly at/around the compaction trigger."""
    monkeypatch.setattr(tape_mod, "_COMPACT_THRESHOLD", 16)
    ops = []
    for i in range(40):
        ops.append(("push", float(i)))
    for _ in range(17):  # crosses head > threshold with head*2 > capacity
        ops.append(("pop",))
    ops += [("peek_block", 10), ("push", 99.0), ("drain",)]
    replay_differential(ops)


def test_nd_compaction_preserves_staged_suffix(monkeypatch):
    """Staged (uncommitted) rpush slots past the write pointer must
    survive an in-place compaction."""
    monkeypatch.setattr(tape_mod, "_COMPACT_THRESHOLD", 4)
    ops = []
    for i in range(12):
        ops.append(("push", float(i)))
    ops.append(("rpush", 123.0, 1))     # staged past the write pointer
    for _ in range(6):
        ops.append(("pop",))            # triggers compaction
    ops += [("rpush", 122.0, 0), ("advance_writer", 2), ("drain",)]
    replay_differential(ops)


# -- the advance_writer(0) regression (satellite) -----------------------------

def test_advance_writer_zero_does_not_grow_buffer():
    plain = Tape("t")
    plain.advance_writer(0)
    assert len(plain._buf) == 0  # was: one spurious _UNWRITTEN slot
    assert len(plain) == 0
    plain.push(1.0)
    assert plain.drain() == [1.0]


def test_advance_writer_zero_is_noop_on_nd_tape():
    nd = NdTape("t")
    nd.advance_writer(0)
    assert len(nd) == 0
    assert nd.dtype_kind is None
    nd.push(1.0)
    assert nd.drain() == [1.0]


def test_advance_writer_zero_after_staging():
    for cls in (Tape, NdTape):
        t = cls("t")
        t.rpush(5.0, 0)
        t.advance_writer(0)   # stages untouched, nothing committed
        assert len(t) == 0
        t.advance_writer(1)
        assert t.drain() == [5.0]


# -- array-view API (NdTape only) ---------------------------------------------

def test_peek_block_array_is_zero_copy_and_readonly():
    import numpy as np
    nd = NdTape("t")
    for i in range(8):
        nd.push(float(i))
    view = nd.peek_block_array(5)
    assert view.dtype == np.float64
    assert view.tolist() == [0.0, 1.0, 2.0, 3.0, 4.0]
    assert view.base is not None          # a view, not a copy
    assert not view.flags.writeable
    with pytest.raises((ValueError, RuntimeError)):
        view[0] = 99.0


def test_peek_block_array_underflow_and_none_cases():
    nd = NdTape("t")
    with pytest.raises(TapeUnderflow):
        nd.peek_block_array(1)
    assert nd.peek_block_array(0) is None  # no dtype adopted yet
    nd.push(1)
    nd.push(2.5)                           # promotes to mixed
    assert nd.peek_block_array(2) is None  # mixed: no pure view
    assert nd.peek_block(2) == [1, 2.5]


def test_write_strided_array_matches_list_path():
    import numpy as np
    for values in (np.array([1.5, 2.5, 3.5]),
                   np.array([10, 20, 30], dtype=np.int64)):
        nd = NdTape("t")
        plain = Tape("t")
        nd.write_strided_array(0, 2, values)
        nd.write_strided_array(1, 2, values)
        nd.advance_writer(6)
        plain.write_strided(0, 2, values.tolist())
        plain.write_strided(1, 2, values.tolist())
        plain.advance_writer(6)
        assert canon(nd.drain()) == canon(plain.drain())


def test_write_strided_array_huge_int_degrades_exactly():
    import numpy as np
    nd = NdTape("t")
    nd.push(0.5)                            # float storage
    nd.write_strided_array(0, 1, np.array([2 ** 60], dtype=np.int64))
    nd.advance_writer(1)
    assert nd.degrade_reason == "int beyond float64-exact range"
    assert nd.drain() == [0.5, 2 ** 60]     # exact value preserved
