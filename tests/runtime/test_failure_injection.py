"""Failure-injection tests: broken schedules, corrupted graphs, and rate
lies must fail loudly, never silently corrupt the stream."""

import pytest

from repro.graph import FilterSpec, StreamGraph
from repro.ir import WorkBuilder
from repro.runtime import execute
from repro.runtime.errors import StreamRuntimeError, TapeUnderflow
from repro.schedule import RateError, Schedule, build_schedule, repetition_vector

from ..conftest import linear_program, make_pair_sum, make_ramp_source, make_scaler


class TestScheduleSabotage:
    def _graph(self):
        return linear_program(make_ramp_source(2), make_pair_sum())

    def test_consumer_scheduled_before_producer_underflows(self):
        g = self._graph()
        good = build_schedule(g)
        sabotaged = Schedule(good.init, tuple(reversed(good.steady)),
                             good.reps)
        with pytest.raises(TapeUnderflow):
            execute(g, sabotaged, iterations=1)

    def test_overcounted_consumer_underflows(self):
        g = self._graph()
        good = build_schedule(g)
        reps = dict(good.reps)
        consumer = g.actor_by_name("pairsum").id
        steady = tuple((aid, count * 2 if aid == consumer else count)
                       for aid, count in good.steady)
        with pytest.raises(TapeUnderflow):
            execute(g, Schedule(good.init, steady, reps), iterations=1)

    def test_unbalanced_reps_rejected_before_execution(self):
        g = self._graph()
        reps = repetition_vector(g)
        reps[g.actor_by_name("src").id] += 1
        with pytest.raises(RateError):
            build_schedule(g, reps)


class TestLyingRates:
    def test_actor_that_pops_more_than_declared(self):
        """A body popping more than its declared rate underflows at run
        time (validation would reject it statically, too)."""
        b = WorkBuilder()
        b.push(b.pop() + b.pop())  # declares pop=1 below: a lie
        liar = FilterSpec("liar", pop=1, push=1, work_body=b.build())
        g = linear_program(make_ramp_source(1), liar)
        with pytest.raises(TapeUnderflow):
            execute(g, iterations=4)

    def test_validation_catches_the_same_lie(self):
        from repro.graph import collect_problems
        b = WorkBuilder()
        b.push(b.pop() + b.pop())
        liar = FilterSpec("liar", pop=1, push=1, work_body=b.build())
        g = linear_program(make_ramp_source(1), liar)
        assert any("pops 2" in p for p in collect_problems(g))


class TestGraphSabotage:
    def test_two_dangling_outputs_rejected(self):
        g = StreamGraph()
        a = g.add_actor(make_ramp_source(2, name="a"))
        b = g.add_actor(make_ramp_source(2, name="b"))
        with pytest.raises(StreamRuntimeError):
            execute(g, iterations=1)

    def test_disconnected_components_run_independently(self):
        """One source + one full pipeline: the lone source just runs."""
        g = linear_program(make_ramp_source(2), make_scaler())
        # fine as-is; nothing to assert beyond no crash and output
        outputs = execute(g, iterations=1).outputs
        assert outputs == [0.0, 2.0]
