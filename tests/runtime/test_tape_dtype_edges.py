"""dtype edges of the ndarray-native tape, unit-level and through the
full vector-backend stack.

Covers the satellite checklist: int→float promotion mid-stream, NaN/inf
payloads, and vector-of-vector elements degrading the tape to list
storage with the reason surfaced through ``ExecutionResult.vectorized``.
"""

from __future__ import annotations

import math

import pytest

np = pytest.importorskip("numpy")

from repro.apps.registry import get_benchmark
from repro.graph.actor import FilterSpec
from repro.graph.flatten import flatten
from repro.graph.structure import Program, pipeline
from repro.fuzz.harness import OPTION_SETS
from repro.ir import WorkBuilder
from repro.runtime import NdTape, execute
from repro.simd.machine import CORE_I7
from repro.simd.pipeline import compile_graph


def canon(value):
    if isinstance(value, list):
        return tuple(canon(v) for v in value)
    return (type(value).__name__, repr(value))


# -- promotion mid-stream -----------------------------------------------------

class TestPromotion:
    def test_int_then_float_promotes_and_preserves_types(self):
        t = NdTape("t")
        t.push(1)
        t.push(2)
        assert t.dtype_kind == "int"
        t.push(2.5)                       # float arrives mid-stream
        assert t.dtype_kind == "mixed"
        assert [t.pop() for _ in range(3)] == [1, 2, 2.5]
        assert type(t.peek(0) if len(t) else 0) is int
        assert t.dtype_kind is None       # drained -> dtype reset

    def test_float_then_int_gains_int_mask(self):
        t = NdTape("t")
        t.push(0.5)
        assert t.dtype_kind == "float"
        t.push(7)
        assert t.dtype_kind == "mixed"
        a, b = t.pop(), t.pop()
        assert (type(a), a) == (float, 0.5)
        assert (type(b), b) == (int, 7)

    def test_promotion_with_inexact_staged_int_degrades(self):
        t = NdTape("t")
        t.push(2 ** 60)                   # exact in int64, not in float64
        assert t.dtype_kind == "int"
        t.push(0.5)
        assert t.dtype_kind == "list"
        assert t.degrade_reason == "int beyond float64-exact range"
        assert t.drain() == [2 ** 60, 0.5]  # exact values preserved

    def test_int64_overflow_degrades(self):
        t = NdTape("t")
        t.push(1)
        t.push(2 ** 64)
        assert t.degrade_reason == "int beyond int64 range"
        assert t.drain() == [1, 2 ** 64]

    def test_dtype_readopted_after_empty(self):
        t = NdTape("t")
        t.push(1)
        t.pop()
        t.push(0.5)                       # whole new dtype, no degrade
        assert t.dtype_kind == "float"
        assert t.degrade_reason is None


# -- NaN / inf payloads -------------------------------------------------------

class TestNaNInf:
    def test_nan_and_inf_roundtrip(self):
        t = NdTape("t")
        t.push(float("nan"))
        t.push(float("inf"))
        t.push(float("-inf"))
        assert t.dtype_kind == "float"
        got = t.drain()
        assert math.isnan(got[0])
        assert got[1] == float("inf") and got[2] == float("-inf")

    def test_nan_visible_through_array_view(self):
        t = NdTape("t")
        t.push(1.0)
        t.push(float("nan"))
        view = t.peek_block_array(2)
        assert np.isnan(view[1])

    def test_graph_with_inf_and_nan_matches_interpreter(self):
        # huge -> x + x overflows to inf; (x+x) - (x+x) is then nan.
        b = WorkBuilder()
        b.push(1e308)
        src = FilterSpec("huge", pop=0, push=1, work_body=b.build())
        b = WorkBuilder()
        x = b.let("x", b.pop())
        y = b.let("y", x + x)
        b.push(y)
        b.push(y - y)
        blow = FilterSpec("blow", pop=1, push=2, work_body=b.build())
        graph = flatten(Program("nanflow", pipeline(src, blow)))
        ref = execute(graph, iterations=4, backend="interp")
        got = execute(graph, iterations=4, backend="vector")
        assert canon(got.outputs) == canon(ref.outputs)
        assert any(isinstance(v, float) and math.isnan(v)
                   for v in got.outputs)
        assert any(v == float("inf") for v in got.outputs)


# -- vector payloads degrade with a recorded reason ---------------------------

class TestVectorPayloadFallback:
    def test_vector_elements_degrade_tape(self):
        t = NdTape("t")
        t.push(1.0)
        t.push([2.0, 3.0])
        assert t.dtype_kind == "list"
        assert t.degrade_reason == "vector payload"
        assert t.drain() == [1.0, [2.0, 3.0]]

    def test_bool_payload_reason_names_the_type(self):
        t = NdTape("t")
        t.push(True)
        assert t.degrade_reason == "non-numeric payload (bool)"

    def test_horizontal_graph_records_tape_fallback_reason(self):
        scalar = flatten(get_benchmark("RunningExample"))
        graph = compile_graph(scalar, CORE_I7,
                              OPTION_SETS["horizontal"]).graph
        result = execute(graph, iterations=2, backend="vector")
        # Horizontal SIMDization moves vectors over tapes: the adjacent
        # batched movers keep running (list path) and the degrade reason
        # is recorded on their status.
        tainted = [v for v in result.vectorized.values()
                   if "tape fallback: vector payload" in v]
        assert tainted, result.vectorized
        ref = execute(graph, iterations=2, backend="interp")
        assert canon(result.outputs) == canon(ref.outputs)

    def test_horizontal_graph_still_batches_scalar_stretches(self):
        scalar = flatten(get_benchmark("RunningExample"))
        graph = compile_graph(scalar, CORE_I7,
                              OPTION_SETS["horizontal"]).graph
        result = execute(graph, iterations=4, backend="vector")
        assert result.batched_firings > 0
