"""Tests for the FIFO tape with rpush/peek/advance semantics."""

import pytest

from repro.runtime import Tape, TapeUnderflow, UninitializedRead


class TestBasicFifo:
    def test_push_pop_order(self):
        t = Tape()
        for value in (1, 2, 3):
            t.push(value)
        assert [t.pop(), t.pop(), t.pop()] == [1, 2, 3]

    def test_len_counts_committed_items(self):
        t = Tape()
        t.push(1)
        t.push(2)
        assert len(t) == 2
        t.pop()
        assert len(t) == 1

    def test_pop_empty_raises(self):
        with pytest.raises(TapeUnderflow):
            Tape().pop()

    def test_peek_nondestructive(self):
        t = Tape()
        t.push(10)
        t.push(20)
        assert t.peek(1) == 20
        assert len(t) == 2
        assert t.pop() == 10

    def test_peek_past_end_raises(self):
        t = Tape()
        t.push(1)
        with pytest.raises(TapeUnderflow):
            t.peek(1)

    def test_negative_offsets_rejected(self):
        t = Tape()
        with pytest.raises(ValueError):
            t.peek(-1)
        with pytest.raises(ValueError):
            t.rpush(0, -1)


class TestRPush:
    """The Figure 3b write idiom: rpush at offsets, then push + advance."""

    def test_rpush_does_not_commit(self):
        t = Tape()
        t.rpush(99, 1)
        assert len(t) == 0

    def test_figure3b_write_group(self):
        """Lane k written at offset k*stride; push commits lane 0."""
        t = Tape()
        stride = 2
        lanes = [100, 101, 102, 103]
        for k in (3, 2, 1):
            t.rpush(lanes[k], k * stride)
        t.push(lanes[0])
        # Second group at the advanced pointer.
        lanes2 = [200, 201, 202, 203]
        for k in (3, 2, 1):
            t.rpush(lanes2[k], k * stride)
        t.push(lanes2[0])
        t.advance_writer((4 - 1) * stride)
        assert [t.pop() for _ in range(8)] == [
            100, 200, 101, 201, 102, 202, 103, 203]

    def test_advance_writer_over_hole_raises(self):
        t = Tape()
        t.rpush(1, 1)  # slot 0 never written
        with pytest.raises(UninitializedRead):
            t.advance_writer(2)

    def test_pop_of_uncommitted_slot_never_possible(self):
        t = Tape()
        t.rpush(5, 0)
        assert len(t) == 0  # not visible until push/advance
        t.advance_writer(1)
        assert t.pop() == 5


class TestAdvanceReader:
    def test_skips_items(self):
        t = Tape()
        for value in range(6):
            t.push(value)
        t.pop()
        t.advance_reader(3)
        assert t.pop() == 4

    def test_advance_past_end_raises(self):
        t = Tape()
        t.push(1)
        with pytest.raises(TapeUnderflow):
            t.advance_reader(2)


class TestDrain:
    def test_drain_returns_all_and_empties(self):
        t = Tape()
        for value in range(4):
            t.push(value)
        assert t.drain() == [0, 1, 2, 3]
        assert len(t) == 0

    def test_drain_after_partial_pop(self):
        t = Tape()
        for value in range(4):
            t.push(value)
        t.pop()
        assert t.drain() == [1, 2, 3]


class TestCompaction:
    def test_long_stream_stays_bounded(self):
        t = Tape()
        for value in range(100_000):
            t.push(value)
            assert t.pop() == value
        assert len(t._buf) < 20_000  # internal buffer was compacted

    def test_vector_items_supported(self):
        t = Tape()
        t.push([1, 2, 3, 4])
        assert t.pop() == [1, 2, 3, 4]
