"""Differential testing: interpreter vs. compiled backend.

The compiled backend's contract is *bit-identical observable behaviour*:
for every application in the registry — scalar and macro-SIMDized, with
and without SAGU — both engines must produce

* identical steady-state outputs,
* identical init-phase outputs,
* identical per-actor performance-event bags for both phases,
  event-for-event (so every modeled cycle count, figure, and partitioning
  decision is backend-independent).

Any divergence here means the closure compiler mis-modeled interpreter
semantics and is a hard failure, not a tolerance question.
"""

import pytest

from repro.apps.registry import BENCHMARKS, get_benchmark
from repro.graph.flatten import flatten
from repro.runtime import execute
from repro.simd.machine import CORE_I7, CORE_I7_SAGU
from repro.simd.pipeline import compile_graph

ALL_BENCHMARKS = sorted(BENCHMARKS)


def _counter_bags(per_actor):
    """Per-actor event dicts with zero counts dropped (Counter equality
    already ignores zeros, but normalising keeps failure diffs readable)."""
    return {
        actor_id: {event: count
                   for event, count in counters.events.items() if count}
        for actor_id, counters in per_actor.by_actor.items()
        if any(counters.events.values())
    }


def assert_backends_agree(graph, machine, iterations=2):
    ref = execute(graph, machine=machine, iterations=iterations,
                  backend="interp")
    got = execute(graph, machine=machine, iterations=iterations,
                  backend="compiled")
    assert ref.backend == "interp"
    assert got.backend == "compiled"
    assert got.outputs == ref.outputs
    assert got.init_outputs == ref.init_outputs
    assert _counter_bags(got.init_counters) == _counter_bags(ref.init_counters)
    assert _counter_bags(got.steady_counters) == \
        _counter_bags(ref.steady_counters)
    # Counter equality implies modeled-cycle equality, but assert the
    # headline metric explicitly for good measure.
    assert got.steady_cycles(machine) == ref.steady_cycles(machine)
    return ref, got


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
class TestScalarGraphs:
    def test_scalar(self, name):
        assert_backends_agree(flatten(get_benchmark(name)), CORE_I7)


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
class TestSimdizedGraphs:
    def test_macross_core_i7(self, name):
        scalar = flatten(get_benchmark(name))
        simd = compile_graph(scalar, CORE_I7).graph
        assert_backends_agree(simd, CORE_I7)

    def test_macross_sagu(self, name):
        scalar = flatten(get_benchmark(name))
        simd = compile_graph(scalar, CORE_I7_SAGU).graph
        assert_backends_agree(simd, CORE_I7_SAGU)


class TestNonEmptyComparison:
    """Guard against the vacuous-pass failure mode: the differential
    assertions above only mean something if the runs actually did work."""

    def test_fmradio_produces_output_and_events(self):
        simd = compile_graph(flatten(get_benchmark("FMRadio")), CORE_I7).graph
        ref, got = assert_backends_agree(simd, CORE_I7)
        assert ref.outputs
        assert _counter_bags(ref.steady_counters)
        assert got.steady_cycles(CORE_I7) > 0
