"""Direct tests of the native splitter/joiner/HSplitter/HJoiner firing
paths (usually exercised only through whole-graph runs)."""

import pytest

from repro.graph import StreamGraph
from repro.graph.builtins import (
    HJoinerSpec,
    HSplitterSpec,
    SplitKind,
    duplicate_splitter,
    roundrobin_joiner,
    roundrobin_splitter,
)
from repro.runtime.executor import _GraphRun
from repro.schedule import Schedule
from repro.simd.machine import CORE_I7

from ..conftest import make_ramp_source, make_scaler


def _run_for(graph):
    reps = {aid: 1 for aid in graph.actors}
    return _GraphRun(graph, Schedule((), tuple(), reps), CORE_I7)


class TestRoundRobinMovers:
    def _graph(self):
        g = StreamGraph("movers")
        src = g.add_actor(make_ramp_source(8, name="src"))
        split = g.add_actor(roundrobin_splitter([2, 2]))
        a = g.add_actor(make_scaler(name="a"))
        b = g.add_actor(make_scaler(name="b"))
        join = g.add_actor(roundrobin_joiner([2, 2]))
        tail = g.add_actor(make_scaler(name="tail"))
        g.add_tape(src.id, split.id)
        g.add_tape(split.id, a.id, src_port=0)
        g.add_tape(split.id, b.id, src_port=1)
        g.add_tape(a.id, join.id, dst_port=0)
        g.add_tape(b.id, join.id, dst_port=1)
        g.add_tape(join.id, tail.id)
        return g, src, split, a, b, join

    def test_splitter_distributes_in_weight_chunks(self):
        g, src, split, a, b, join = self._graph()
        run = _run_for(g)
        run.fire(src.id)
        run.fire(split.id)
        tape_to_a = [t for t in g.out_tapes(split.id) if t.dst == a.id][0]
        tape_to_b = [t for t in g.out_tapes(split.id) if t.dst == b.id][0]
        assert run.tapes[tape_to_a.id].drain() == [0.0, 1.0]
        assert run.tapes[tape_to_b.id].drain() == [2.0, 3.0]

    def test_joiner_merges_in_weight_chunks(self):
        g, src, split, a, b, join = self._graph()
        run = _run_for(g)
        in_a = [t for t in g.in_tapes(join.id) if t.dst_port == 0][0]
        in_b = [t for t in g.in_tapes(join.id) if t.dst_port == 1][0]
        for v in (10, 11):
            run.tapes[in_a.id].push(v)
        for v in (20, 21):
            run.tapes[in_b.id].push(v)
        run.fire(join.id)
        out = g.out_tapes(join.id)[0]
        assert run.tapes[out.id].drain() == [10, 11, 20, 21]


class TestHorizontalMovers:
    def _hgraph(self, kind=SplitKind.ROUNDROBIN, weight=2):
        g = StreamGraph("h")
        src = g.add_actor(make_ramp_source(8, name="src"))
        hsplit = g.add_actor(HSplitterSpec(kind, weight, 4))
        hjoin = g.add_actor(HJoinerSpec(weight, 4))
        tail = g.add_actor(make_scaler(name="tail"))
        g.add_tape(src.id, hsplit.id)
        g.add_tape(hsplit.id, hjoin.id, vector_width=4)
        g.add_tape(hjoin.id, tail.id)
        return g, src, hsplit, hjoin

    def test_rr_hsplitter_packs_lane_per_branch(self):
        g, src, hsplit, hjoin = self._hgraph()
        run = _run_for(g)
        run.fire(src.id)
        run.fire(hsplit.id)
        vec_tape = g.out_tapes(hsplit.id)[0]
        vectors = run.tapes[vec_tape.id].drain()
        # weight=2: items [0,1] -> branch0, [2,3] -> branch1, ...
        assert vectors == [[0.0, 2.0, 4.0, 6.0], [1.0, 3.0, 5.0, 7.0]]

    def test_hsplit_hjoin_roundtrip_is_identity(self):
        g, src, hsplit, hjoin = self._hgraph()
        run = _run_for(g)
        run.fire(src.id)
        run.fire(hsplit.id)
        run.fire(hjoin.id)
        out = g.out_tapes(hjoin.id)[0]
        assert run.tapes[out.id].drain() == [float(i) for i in range(8)]

    def test_duplicate_hsplitter_splats(self):
        g, src, hsplit, hjoin = self._hgraph(SplitKind.DUPLICATE, weight=1)
        run = _run_for(g)
        run.fire(src.id)
        run.fire(hsplit.id)
        vec_tape = g.out_tapes(hsplit.id)[0]
        assert run.tapes[vec_tape.id].pop() == [0.0, 0.0, 0.0, 0.0]

    def test_mover_events_charged(self):
        g, src, hsplit, hjoin = self._hgraph()
        run = _run_for(g)
        run.fire(src.id)
        run.fire(hsplit.id)
        counters = run.counters.by_actor[hsplit.id]
        assert counters["pack"] == 8
        assert counters["v_store"] == 2
        assert counters["s_load"] == 8
