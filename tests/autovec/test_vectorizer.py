"""Tests for the whole-graph auto-vectorization baseline."""

import pytest

from repro.autovec import GCC43, ICC111, auto_vectorize
from repro.graph import validate
from repro.runtime import execute
from repro.simd import compile_graph
from repro.simd.machine import CORE_I7
from repro.simd.tape_opt import uses_gather

from ..conftest import (
    linear_program,
    make_accumulator,
    make_pair_sum,
    make_ramp_source,
    make_scaler,
)


def _graph():
    # pairsum rep = 4 per steady state (src pushes 8): ICC can vectorize it.
    return linear_program(make_ramp_source(8), make_pair_sum())


class TestActorLoopVectorization:
    def test_icc_vectorizes_stateless_rep_multiple(self):
        g = _graph()
        report = auto_vectorize(g, ICC111, CORE_I7)
        assert "pairsum" in report.actor_vectorized
        validate(g)

    def test_gcc_never_actor_vectorizes(self):
        g = _graph()
        report = auto_vectorize(g, GCC43, CORE_I7)
        assert report.actor_vectorized == []

    def test_rep_not_multiple_blocks_icc(self):
        """Auto-vectorizers cannot rescale the schedule (§4)."""
        g = linear_program(make_ramp_source(2), make_pair_sum())
        report = auto_vectorize(g, ICC111, CORE_I7)
        assert "pairsum" in report.rejected
        assert "rescale" in report.rejected["pairsum"]

    def test_stateful_rejected(self):
        g = linear_program(make_ramp_source(4), make_accumulator())
        report = auto_vectorize(g, ICC111, CORE_I7)
        assert "accum" in report.rejected

    def test_functional_equivalence(self):
        g = _graph()
        baseline = execute(g.clone(), iterations=4).outputs
        auto_vectorize(g, ICC111, CORE_I7)
        outputs = execute(g, iterations=4).outputs
        assert outputs == pytest.approx(baseline)

    def test_macro_simdized_actors_left_alone(self):
        g = compile_graph(_graph(), CORE_I7).graph
        specs_before = {a.id: a.spec for a in g.filters()
                        if uses_gather(a.spec)}
        auto_vectorize(g, ICC111, CORE_I7)
        for actor_id, spec in specs_before.items():
            assert g.actors[actor_id].spec is spec

    def test_overhead_annotation_present(self):
        from repro.ir import stmt as S
        g = _graph()
        auto_vectorize(g, ICC111, CORE_I7)
        spec = g.actor_by_name("pairsum").spec
        assert isinstance(spec.work_body[0], S.CostAnnotation)


class TestEndToEndSpeedups:
    def test_ordering_gcc_icc_macro(self):
        """The paper's headline ordering: GCC-autovec < ICC-autovec <
        MacroSS, on a benchmark with all three applicable."""
        from repro.experiments.harness import Variants
        variants = Variants("DCT", CORE_I7)
        base = variants.baseline_cpo()
        gcc = base / variants.autovec_cpo(GCC43)
        icc = base / variants.autovec_cpo(ICC111)
        macro = base / variants.macro_cpo()
        assert gcc <= icc <= macro
        assert macro > 1.5

    def test_macro_plus_autovec_never_worse(self):
        from repro.experiments.harness import Variants
        for name in ("FFT", "BeamFormer"):
            variants = Variants(name, CORE_I7)
            macro = variants.macro_cpo()
            combined = variants.macro_autovec_cpo(ICC111)
            assert combined <= macro * 1.001
