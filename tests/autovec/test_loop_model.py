"""Tests for the inner-loop auto-vectorizer model."""

import pytest

from repro.autovec import GCC43, ICC111
from repro.autovec.loop_model import LoopVecStats, vectorize_inner_loops
from repro.graph import FilterSpec
from repro.ir import FLOAT, WorkBuilder, call
from repro.ir import expr as E
from repro.ir import stmt as S
from repro.ir.visitors import iter_all_exprs, iter_stmts
from repro.perf import PerfCounters
from repro.runtime import ActorRuntime, Interpreter, Tape
from repro.simd.machine import CORE_I7


def _run(body, inputs, firings=1):
    tape_in = Tape()
    for item in inputs:
        tape_in.push(item)
    tape_out = Tape()
    rt = ActorRuntime(0, 4, PerfCounters(), {}, tape_in, tape_out)
    interp = Interpreter(rt)
    for _ in range(firings):
        interp.run_work(body)
    return tape_out.drain(), rt.counters


def _fir_body(taps=8):
    b = WorkBuilder()
    coeff = b.array("c", FLOAT, taps, init=tuple(0.1 * i for i in range(taps)))
    acc = b.let("acc", 0.0)
    with b.loop("i", 0, taps) as i:
        b.set(acc, acc + b.peek(i) * coeff[i])
    b.push(acc)
    b.stmt(b.pop())
    return b.build()


def _map_body(n=8):
    b = WorkBuilder()
    table = b.array("t", FLOAT, n, init=tuple(float(i) for i in range(n)))
    with b.loop("i", 0, n) as i:
        b.push(b.pop() * table[i])
    return b.build()


class TestReductionPattern:
    def test_fir_loop_vectorized_by_icc(self):
        stats = LoopVecStats()
        out = vectorize_inner_loops(_fir_body(), ICC111, CORE_I7, stats)
        assert stats.reductions == 1
        gathers = [e for e in iter_all_exprs(out)
                   if isinstance(e, E.GatherPeek)]
        assert gathers and gathers[0].stride == 1

    def test_gcc_rejects_peeking_loops(self):
        stats = LoopVecStats()
        out = vectorize_inner_loops(_fir_body(), GCC43, CORE_I7, stats)
        assert stats.total == 0
        assert out == _fir_body()

    def test_functional_equivalence_within_tolerance(self):
        """Reassociated reduction: equal up to floating-point noise."""
        body = _fir_body()
        stats = LoopVecStats()
        vec = vectorize_inner_loops(body, ICC111, CORE_I7, stats)
        inputs = [0.37 * i - 1.5 for i in range(16)]
        scalar_out, _ = _run(body, inputs, firings=4)
        vector_out, _ = _run(vec, inputs, firings=4)
        assert vector_out == pytest.approx(scalar_out, rel=1e-9)

    def test_trip_count_must_be_multiple_of_sw(self):
        stats = LoopVecStats()
        vectorize_inner_loops(_fir_body(taps=6), ICC111, CORE_I7, stats)
        assert stats.total == 0

    def test_math_calls_gate_on_profile(self):
        b = WorkBuilder()
        acc = b.let("acc", 0.0)
        with b.loop("i", 0, 8) as i:
            b.set(acc, acc + call("sin", b.peek(i)))
        b.push(acc)
        b.stmt(b.pop())
        body = b.build()
        stats = LoopVecStats()
        vectorize_inner_loops(body, GCC43, CORE_I7, stats)
        assert stats.total == 0
        stats = LoopVecStats()
        vectorize_inner_loops(body, ICC111, CORE_I7, stats)
        assert stats.total == 1

    def test_reduction_cost_improves(self):
        from repro.simd.machine import CORE_I7 as M
        body = _fir_body(taps=16)
        stats = LoopVecStats()
        vec = vectorize_inner_loops(body, ICC111, M, stats)
        inputs = [0.1 * i for i in range(32)]
        _, scalar_counters = _run(body, inputs, firings=2)
        _, vector_counters = _run(vec, inputs, firings=2)
        assert vector_counters.cycles(M) < scalar_counters.cycles(M)


class TestMapPattern:
    def test_pop_map_vectorized(self):
        stats = LoopVecStats()
        out = vectorize_inner_loops(_map_body(), GCC43, CORE_I7, stats)
        assert stats.maps == 1
        assert any(isinstance(s, S.ScatterPush) for s in iter_stmts(out))

    def test_map_functional_equivalence_exact(self):
        """Maps do not reassociate: outputs are bit-identical."""
        body = _map_body()
        stats = LoopVecStats()
        vec = vectorize_inner_loops(body, GCC43, CORE_I7, stats)
        inputs = [1.0 + 0.25 * i for i in range(16)]
        scalar_out, _ = _run(body, inputs, firings=2)
        vector_out, _ = _run(vec, inputs, firings=2)
        assert vector_out == scalar_out

    def test_two_pops_rejected(self):
        b = WorkBuilder()
        with b.loop("i", 0, 8):
            b.push(b.pop() + b.pop())
        stats = LoopVecStats()
        vectorize_inner_loops(b.build(), ICC111, CORE_I7, stats)
        assert stats.total == 0

    def test_non_affine_index_rejected(self):
        b = WorkBuilder()
        table = b.array("t", FLOAT, 8, init=tuple(range(8)))
        with b.loop("i", 0, 8) as i:
            b.push(b.pop() * table[(i * 2) % 8])
        stats = LoopVecStats()
        vectorize_inner_loops(b.build(), ICC111, CORE_I7, stats)
        assert stats.total == 0

    def test_already_vector_code_left_alone(self):
        body = (S.For("i", E.IntConst(0), E.IntConst(8),
                      (S.Push(E.GatherPop(stride=1, advance=4)),)),)
        stats = LoopVecStats()
        out = vectorize_inner_loops(body, ICC111, CORE_I7, stats)
        assert stats.total == 0
        assert out == body
