"""CLI surface of the serving runtime: ``macross serve``, ``macross
loadgen``, and the enriched ``macross list``."""

from __future__ import annotations

import json

import pytest

from repro.cli import main


class TestListCommand:
    def test_list_shows_actor_and_tape_counts(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        lines = [line for line in out.splitlines() if line.strip()]
        assert len(lines) >= 10
        for line in lines:
            assert "actors=" in line and "tapes=" in line
        dct = next(line for line in lines if line.startswith("DCT"))
        assert "actors=  4" in dct and "tapes=  3" in dct


@pytest.mark.serve
class TestServeCommand:
    def test_serve_reports_parity_and_blame_table(self, capsys):
        assert main(["serve", "DCT", "--workers", "1", "--sessions", "2",
                     "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "2 session(s) over 1 worker(s)" in out
        assert "latency p50" in out
        assert "kcache hit" in out  # the per-worker blame table
        assert "parity: all 2 served session(s) match" in out

    def test_serve_unknown_benchmark_fails_cleanly(self, capsys):
        assert main(["serve", "NotABench", "--workers", "1"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_serve_unknown_policy_fails_cleanly(self, capsys):
        assert main(["serve", "DCT", "--policy", "round-robbin"]) == 2
        err = capsys.readouterr().err
        assert "unknown placement policy" in err
        assert "round-robin" in err  # did-you-mean

    def test_serve_queue_transport_flag(self, capsys):
        assert main(["serve", "DCT", "--workers", "1", "--sessions", "2",
                     "--iterations", "1", "--transport", "queue"]) == 0
        out = capsys.readouterr().out
        assert "transport=queue" in out
        assert "parity: all 2 served session(s) match" in out

    def test_serve_store_counters_in_summary(self, capsys, tmp_path):
        assert main(["serve", "DCT", "--workers", "1", "--sessions", "2",
                     "--iterations", "1",
                     "--store", str(tmp_path / "store")]) == 0
        out = capsys.readouterr().out
        assert "kernel store:" in out
        assert "1 miss(es)" in out and "1 publish(es)" in out


@pytest.mark.serve
class TestServeExitCodes:
    """Satellite (c): overload-only runs are a healthy outcome (exit 0
    with a rejection summary); parity mismatches stay non-zero."""

    def test_shed_only_run_exits_zero_with_summary(self, capsys):
        # One lane of depth 1 and a zero admit budget: every session that
        # arrives while the first compiles is shed at the door.
        assert main(["serve", "FMRadio", "--workers", "1",
                     "--sessions", "4", "--iterations", "4",
                     "--max-queue-depth", "1",
                     "--admit-timeout", "0"]) == 0
        out = capsys.readouterr().out
        assert "session(s) shed after 0s admit timeout" in out
        assert "PARITY MISMATCH" not in out

    def test_parity_mismatch_exits_nonzero(self, capsys, monkeypatch):
        import repro.cli as cli_mod

        real = cli_mod._serve_references

        def corrupt(names, machine, args):
            refs = real(names, machine, args)
            for ref in refs.values():
                ref.outputs = list(ref.outputs) + [123456.0]
            return refs

        monkeypatch.setattr(cli_mod, "_serve_references", corrupt)
        assert main(["serve", "DCT", "--workers", "1", "--sessions", "2",
                     "--iterations", "1"]) == 1
        assert "PARITY MISMATCH" in capsys.readouterr().out


@pytest.mark.serve
class TestLoadgenCommand:
    def test_closed_loop_writes_json_report(self, capsys, tmp_path):
        report_path = tmp_path / "bench.json"
        assert main(["loadgen", "--apps", "DCT", "--workers", "1",
                     "--mode", "closed", "--concurrency", "1",
                     "--requests", "3", "--iterations", "1",
                     "--json", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "closed loadgen: 3/3 ok" in out
        payload = json.loads(report_path.read_text())
        assert payload["mode"] == "closed"
        assert payload["completed"] == 3
        assert payload["p50_ms"] > 0
        assert payload["p99_ms"] >= payload["p50_ms"]
        assert payload["throughput_rps"] > 0
        assert payload["apps"] == ["DCT"]

    def test_loadgen_rejects_unknown_app(self, capsys):
        assert main(["loadgen", "--apps", "NotABench"]) == 2
        assert "unknown benchmark" in capsys.readouterr().err

    def test_loadgen_fault_injection_restarts_and_exits_zero(
            self, capsys, tmp_path):
        """--kill-worker-after: the SIGKILL mid-run must cost zero
        requests (supervision re-dispatches) and the restart shows up in
        the report."""
        report_path = tmp_path / "fault.json"
        assert main(["loadgen", "--apps", "FMRadio", "--workers", "2",
                     "--mode", "closed", "--concurrency", "2",
                     "--requests", "12", "--iterations", "4",
                     "--kill-worker-after", "3",
                     "--json", str(report_path)]) == 0
        out = capsys.readouterr().out
        assert "supervision:" in out
        payload = json.loads(report_path.read_text())
        assert payload["completed"] == 12
        assert payload["errors"] == 0
        assert payload["restarts"] >= 1
        assert payload["transport"] == "shm"
