"""CLI target-registry surface: ``macross targets``, ``--machine``,
``--pipeline``, and the unknown-target error path."""

import pytest

from repro.cli import main


class TestTargetsCommand:
    def test_lists_every_registered_target(self, capsys):
        assert main(["targets"]) == 0
        out = capsys.readouterr().out
        for name in ("core-i7-sse4", "core-i7-sse4+sagu", "neon-like",
                     "sve-like"):
            assert name in out

    def test_lists_capabilities_and_aliases(self, capsys):
        assert main(["targets"]) == 0
        out = capsys.readouterr().out
        assert "SAGU" in out
        assert "vector math" in out
        assert "sve" in out
        assert "i7+sagu" in out


class TestMachineFlag:
    def test_compile_on_named_target(self, capsys):
        assert main(["compile", "RunningExample", "--machine",
                     "sve-like"]) == 0
        assert "sve-like" in capsys.readouterr().out

    def test_alias_resolution(self, capsys):
        assert main(["compile", "RunningExample", "--machine", "sve"]) == 0
        assert "sve-like" in capsys.readouterr().out

    def test_case_insensitive(self, capsys):
        assert main(["compile", "RunningExample", "--machine", "NEON"]) == 0
        assert "neon-like" in capsys.readouterr().out

    def test_machine_composes_with_sagu_flag(self, capsys):
        assert main(["compile", "MatrixMult", "--machine", "neon",
                     "--sagu"]) == 0
        assert "neon-like+sagu" in capsys.readouterr().out

    def test_run_on_named_target(self, capsys):
        assert main(["run", "RunningExample", "--machine", "sve",
                     "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "sve-like" in out
        assert "cycles/output" in out

    def test_unknown_target_exits_2_with_listing(self, capsys):
        assert main(["compile", "RunningExample", "--machine", "sv3"]) == 2
        err = capsys.readouterr().err
        assert "unknown target 'sv3'" in err
        assert "did you mean 'sve'" in err
        # the full registry listing follows the error
        assert "core-i7-sse4" in err
        assert "neon-like" in err


class TestPipelineFlag:
    def test_named_pipeline(self, capsys):
        assert main(["compile", "RunningExample", "--pipeline",
                     "scalar"]) == 0
        out = capsys.readouterr().out
        assert "scalar" in out

    def test_unknown_pipeline_raises_with_hint(self):
        with pytest.raises(KeyError, match="single-only"):
            main(["compile", "RunningExample", "--pipeline",
                  "single-onyl"])


class TestFuzzMachineFlag:
    def test_restricted_machine_axis(self, capsys):
        assert main(["fuzz", "--budget", "2", "--machine", "sve",
                     "--machine", "i7"]) == 0
        out = capsys.readouterr().out
        assert "programs" in out
