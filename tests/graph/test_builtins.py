"""Tests for splitter/joiner specs and their horizontal variants."""

from repro.graph.builtins import (
    HJoinerSpec,
    HSplitterSpec,
    SplitKind,
    duplicate_splitter,
    roundrobin_joiner,
    roundrobin_splitter,
)


class TestSplitter:
    def test_roundrobin_rates(self):
        s = roundrobin_splitter([4, 4, 4, 4])
        assert s.pop_per_exec == 16
        assert s.push_per_exec(2) == 4
        assert s.fanout == 4

    def test_uneven_roundrobin(self):
        s = roundrobin_splitter([1, 2, 3])
        assert s.pop_per_exec == 6
        assert [s.push_per_exec(i) for i in range(3)] == [1, 2, 3]

    def test_duplicate_rates(self):
        s = duplicate_splitter(4)
        assert s.kind is SplitKind.DUPLICATE
        assert s.pop_per_exec == 1
        assert s.push_per_exec(3) == 1


class TestJoiner:
    def test_roundrobin_rates(self):
        j = roundrobin_joiner([1, 1, 1, 1])
        assert j.push_per_exec == 4
        assert j.pop_per_exec(0) == 1
        assert j.fanin == 4


class TestHorizontalVariants:
    def test_hsplitter_roundrobin_rates(self):
        h = HSplitterSpec(SplitKind.ROUNDROBIN, weight=4, width=4)
        assert h.pop_per_exec == 16   # scalars in
        assert h.push_per_exec == 4   # vectors out

    def test_hsplitter_duplicate_rates(self):
        h = HSplitterSpec(SplitKind.DUPLICATE, weight=1, width=4)
        assert h.pop_per_exec == 1
        assert h.push_per_exec == 1

    def test_hjoiner_rates(self):
        h = HJoinerSpec(weight=1, width=4)
        assert h.pop_per_exec == 1   # vectors in
        assert h.push_per_exec == 4  # scalars out
