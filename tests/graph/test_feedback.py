"""Tests for feedback loops (StreamIt's cyclic composition)."""

import pytest

from repro.graph import (
    FilterSpec,
    GraphError,
    Program,
    feedbackloop,
    flatten,
    pipeline,
    validate,
)
from repro.ir import WorkBuilder
from repro.runtime import execute
from repro.schedule import build_schedule
from repro.schedule.steady_state import DeadlockError
from repro.simd import compile_graph
from repro.simd.machine import CORE_I7

from ..conftest import make_ramp_source, make_scaler


def _mixer() -> FilterSpec:
    b = WorkBuilder()
    b.push(b.pop() + b.pop())
    return FilterSpec("mix", pop=2, push=1, work_body=b.build())


def _decay(factor: float = 0.5) -> FilterSpec:
    b = WorkBuilder()
    b.push(b.pop() * factor)
    return FilterSpec("decay", pop=1, push=1, work_body=b.build())


def _echo_graph(enqueue=(0.0,)):
    fb = feedbackloop(_mixer(), _decay(), join_weights=(1, 1),
                      duplicate_split=True, enqueue=enqueue)
    return flatten(Program("echo", pipeline(
        make_ramp_source(1), fb, make_scaler(1.0, name="tail"))))


class TestConstruction:
    def test_requires_enqueue(self):
        with pytest.raises(ValueError):
            feedbackloop(_mixer(), _decay(), join_weights=(1, 1),
                         duplicate_split=True, enqueue=())

    def test_flattened_structure(self):
        g = _echo_graph()
        validate(g)
        assert g.has_cycle()
        names = {a.name for a in g.actors.values()}
        assert {"fb_joiner", "fb_splitter", "mix", "decay"} <= names

    def test_feedback_tape_carries_initial_tokens(self):
        g = _echo_graph(enqueue=(1.0, 2.0))
        feedback = [t for t in g.tapes.values() if t.initial]
        assert len(feedback) == 1
        assert feedback[0].initial == (1.0, 2.0)

    def test_cycle_without_tokens_rejected(self):
        g = _echo_graph()
        for tape in g.tapes.values():
            tape.initial = ()
        with pytest.raises(GraphError):
            g.ordered_actors()

    def test_actors_on_cycles(self):
        g = _echo_graph()
        cyclic = {g.actors[a].name for a in g.actors_on_cycles()}
        assert cyclic == {"fb_joiner", "mix", "fb_splitter", "decay"}


class TestSchedulingAndExecution:
    def test_simulated_schedule_feasible(self):
        g = _echo_graph()
        schedule = build_schedule(g)
        assert schedule.steady_firings() == sum(schedule.reps.values())

    def test_iir_echo_semantics(self):
        """y[n] = x[n] + 0.5 * y[n-1] over the ramp input."""
        g = _echo_graph()
        outputs = execute(g, iterations=6).outputs
        expected, y = [], 0.0
        for n in range(6):
            y = n + 0.5 * y
            expected.append(y)
        assert outputs == expected

    def test_multiple_delays(self):
        """Two enqueued zeros delay the feedback by two samples:
        y[n] = x[n] + 0.5 * y[n-2]."""
        g = _echo_graph(enqueue=(0.0, 0.0))
        outputs = execute(g, iterations=6).outputs
        expected, history = [], [0.0, 0.0]
        for n in range(6):
            y = n + 0.5 * history.pop(0)
            history.append(y)
            expected.append(y)
        assert outputs == expected

    def test_starved_loop_deadlocks(self):
        """join_weights (1, 2) needs 2 feedback items per firing but the
        loop replenishes only 1: deadlock, reported not hung."""
        fb = feedbackloop(
            FilterSpec("mix3", pop=3, push=1, work_body=_mixer3_body()),
            _decay(), join_weights=(1, 2), duplicate_split=True,
            enqueue=(0.0,))
        g = flatten(Program("bad", pipeline(
            make_ramp_source(1), fb, make_scaler(1.0, name="tail"))))
        with pytest.raises((DeadlockError, Exception)):
            execute(g, iterations=1)


def _mixer3_body():
    b = WorkBuilder()
    b.push(b.pop() + b.pop() + b.pop())
    return b.build()


class TestPeekingDownstreamOfLoop:
    def test_peeking_filter_after_loop_is_primed(self):
        """The simulated scheduler must prime peek windows outside the
        cycle by demand-firing through the loop."""
        from repro.apps.dspkit import fir_filter
        fb = feedbackloop(_mixer(), _decay(), join_weights=(1, 1),
                          duplicate_split=True, enqueue=(0.0,))
        g = flatten(Program("echo_fir", pipeline(
            make_ramp_source(1), fb,
            fir_filter("smooth", (0.5, 0.25, 0.25)))))
        schedule = build_schedule(g)
        assert schedule.init  # priming firings exist
        outputs = execute(g, iterations=5).outputs
        # reference: comb y[n] = x[n] + 0.5 y[n-1], then the 3-tap FIR
        ys, y = [], 0.0
        for n in range(16):
            y = n + 0.5 * y
            ys.append(y)
        expected = [0.5 * ys[n] + 0.25 * ys[n + 1] + 0.25 * ys[n + 2]
                    for n in range(5)]
        assert outputs == pytest.approx(expected)

    def test_peeking_inside_cycle_rejected(self):
        b = WorkBuilder()
        b.push(b.peek(1) + b.pop())
        peeking_loop = FilterSpec("peeky", pop=1, push=1, peek=2,
                                  work_body=b.build())
        fb = feedbackloop(_mixer(), peeking_loop, join_weights=(1, 1),
                          duplicate_split=True, enqueue=(0.0,))
        g = flatten(Program("bad", pipeline(
            make_ramp_source(1), fb, make_scaler(1.0, name="tail"))))
        with pytest.raises(DeadlockError):
            build_schedule(g)


class TestMacroSSInteraction:
    def test_cycle_actors_stay_scalar(self):
        g = _echo_graph()
        report = compile_graph(g, CORE_I7).report
        assert report.decisions["mix"] == "scalar:inside a feedback loop"
        assert report.decisions["decay"] == "scalar:inside a feedback loop"

    def test_actors_outside_loop_still_vectorized(self):
        g = _echo_graph()
        report = compile_graph(g, CORE_I7).report
        assert report.decisions["tail"] == "single"

    def test_compiled_feedback_graph_equivalent(self):
        g = _echo_graph()
        baseline = execute(g, iterations=8).outputs
        compiled = compile_graph(g, CORE_I7)
        outputs = execute(compiled.graph, machine=CORE_I7,
                          iterations=8).outputs
        n = min(len(baseline), len(outputs))
        assert n > 0
        assert outputs[:n] == baseline[:n]
