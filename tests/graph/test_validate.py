"""Tests for static graph validation and tape-access counting."""

import pytest

from repro.graph import (
    FilterSpec,
    GraphError,
    StreamGraph,
    count_tape_accesses,
    collect_problems,
    validate,
)
from repro.ir import WorkBuilder
from repro.ir import expr as E
from repro.ir import stmt as S

from ..conftest import linear_program, make_ramp_source, make_scaler


class TestGraphValidation:
    def test_valid_pipeline_passes(self):
        g = linear_program(make_ramp_source(4), make_scaler())
        validate(g)  # must not raise

    def test_rate_mismatch_detected(self):
        b = WorkBuilder()
        b.push(b.pop())
        b.push(b.pop())  # body pushes 2, declared 1
        bad = FilterSpec("bad", pop=2, push=1, work_body=b.build())
        g = linear_program(make_ramp_source(4), bad)
        problems = collect_problems(g)
        assert any("pushes 2, declared 1" in p for p in problems)
        with pytest.raises(GraphError):
            validate(g)

    def test_source_with_input_detected(self):
        g = StreamGraph()
        a = g.add_actor(make_ramp_source(2, name="a"))
        b = g.add_actor(make_ramp_source(2, name="b"))
        g.add_tape(a.id, b.id)
        assert any("source with inputs" in p for p in collect_problems(g))

    def test_filter_with_two_inputs_detected(self):
        g = StreamGraph()
        a = g.add_actor(make_ramp_source(2, name="a"))
        b = g.add_actor(make_ramp_source(2, name="b"))
        c = g.add_actor(make_scaler(pop=2))
        g.add_tape(a.id, c.id, dst_port=0)
        g.add_tape(b.id, c.id, dst_port=1)
        assert any("inputs" in p for p in collect_problems(g))


class TestTapeAccessCounting:
    def test_straight_line(self):
        b = WorkBuilder()
        b.push(b.pop() + b.pop())
        assert count_tape_accesses(b.build()) == (2, 1)

    def test_loop_multiplies(self):
        b = WorkBuilder()
        with b.loop("i", 0, 3):
            b.push(b.pop())
        assert count_tape_accesses(b.build()) == (3, 3)

    def test_nested_loops(self):
        b = WorkBuilder()
        with b.loop("i", 0, 2):
            with b.loop("j", 0, 4):
                b.push(b.pop())
        assert count_tape_accesses(b.build()) == (8, 8)

    def test_variable_bound_loop_with_tape_access_rejected(self):
        b = WorkBuilder()
        n = b.let("n", 4)
        with b.loop("i", 0, n):
            b.push(b.pop())
        with pytest.raises(ValueError):
            count_tape_accesses(b.build())

    def test_variable_bound_loop_without_tape_access_ok(self):
        b = WorkBuilder()
        n = b.let("n", 4)
        acc = b.let("acc", 0.0)
        with b.loop("i", 0, n):
            b.set(acc, acc + 1.0)
        b.push(acc)
        b.stmt(b.pop())
        assert count_tape_accesses(b.build()) == (1, 1)

    def test_unbalanced_if_rejected(self):
        b = WorkBuilder()
        x = b.let("x", 1.0)
        with b.if_(x.gt(0.0)):
            b.push(1.0)
        with pytest.raises(ValueError):
            count_tape_accesses(b.build())

    def test_balanced_if_allowed(self):
        b = WorkBuilder()
        x = b.let("x", b.pop())
        with b.if_(x.gt(0.0)):
            b.push(1.0)
        with b.orelse():
            b.push(0.0)
        assert count_tape_accesses(b.build()) == (1, 1)

    def test_rpush_does_not_advance(self):
        body = (S.RPush(E.FloatConst(1.0), E.IntConst(2)),
                S.Push(E.FloatConst(0.0)))
        assert count_tape_accesses(body) == (0, 1)

    def test_advances_count(self):
        body = (S.AdvanceReader(6), S.AdvanceWriter(4))
        assert count_tape_accesses(body) == (6, 4)

    def test_gather_and_scatter_count_their_advance(self):
        body = (S.ExprStmt(E.GatherPop(stride=2)),
                S.ScatterPush(E.Broadcast(E.FloatConst(0.0), 4), stride=2))
        assert count_tape_accesses(body) == (1, 1)

    def test_vectorized_spec_counts_match(self):
        """The Figure 3b pattern: 2 gathers + advance(6) == pop 8."""
        body = (
            S.ExprStmt(E.GatherPop(stride=2)),
            S.ExprStmt(E.GatherPop(stride=2)),
            S.AdvanceReader(6),
        )
        assert count_tape_accesses(body) == (8, 0)
