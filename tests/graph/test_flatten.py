"""Tests for hierarchy flattening."""

import pytest

from repro.graph import (
    GraphError,
    Program,
    flatten,
    pipeline,
    roundrobin_joiner,
    roundrobin_splitter,
    splitjoin,
)

from ..conftest import make_pair_sum, make_ramp_source, make_scaler


class TestPipelineFlattening:
    def test_linear_pipeline(self):
        g = flatten(Program("p", pipeline(
            make_ramp_source(4), make_scaler(), make_pair_sum())))
        assert len(g.actors) == 3
        assert len(g.tapes) == 2
        order = [g.actors[a].name for a in g.topological_order()]
        assert order == ["src", "scale", "pairsum"]

    def test_specs_accepted_directly(self):
        node = pipeline(make_ramp_source(2), make_scaler())
        assert len(node.children) == 2

    def test_top_level_consumer_rejected(self):
        with pytest.raises(GraphError):
            flatten(Program("bad", pipeline(make_scaler())))

    def test_empty_pipeline_rejected(self):
        with pytest.raises(ValueError):
            pipeline()


class TestSplitJoinFlattening:
    def _program(self):
        return Program("sj", pipeline(
            make_ramp_source(4),
            splitjoin(roundrobin_splitter([1, 1]),
                      [make_scaler(2.0, name="s0"),
                       make_scaler(3.0, name="s1")],
                      roundrobin_joiner([1, 1])),
            make_pair_sum(),
        ))

    def test_actor_count(self):
        g = flatten(self._program())
        assert len(g.actors) == 6
        assert len(g.tapes) == 6

    def test_ports_are_contiguous(self):
        g = flatten(self._program())
        splitter = g.actor_by_name("splitter")
        assert sorted(t.src_port for t in g.out_tapes(splitter.id)) == [0, 1]
        joiner = g.actor_by_name("joiner")
        assert sorted(t.dst_port for t in g.in_tapes(joiner.id)) == [0, 1]

    def test_branch_wiring_matches_order(self):
        g = flatten(self._program())
        splitter = g.actor_by_name("splitter")
        targets = [g.actors[t.dst].name
                   for t in g.out_tapes(splitter.id)]
        assert targets == ["s0", "s1"]

    def test_splitjoin_needs_two_branches(self):
        with pytest.raises(ValueError):
            splitjoin(roundrobin_splitter([1]), [make_scaler()],
                      roundrobin_joiner([1]))

    def test_weight_count_mismatch_rejected(self):
        with pytest.raises(ValueError):
            splitjoin(roundrobin_splitter([1, 1, 1]),
                      [make_scaler(name="a"), make_scaler(name="b")],
                      roundrobin_joiner([1, 1]))

    def test_nested_splitjoin(self):
        inner = splitjoin(roundrobin_splitter([1, 1]),
                          [make_scaler(name="i0"), make_scaler(name="i1")],
                          roundrobin_joiner([1, 1]))
        outer = splitjoin(roundrobin_splitter([2, 2]),
                          [inner, make_scaler(name="o1")],
                          roundrobin_joiner([2, 2]))
        g = flatten(Program("nested", pipeline(
            make_ramp_source(4), outer, make_pair_sum())))
        assert len([a for a in g.actors.values() if a.is_splitter]) == 2
        assert len([a for a in g.actors.values() if a.is_joiner]) == 2
