"""Tests for FilterSpec and parameter binding."""

import pytest

from repro.graph import FilterSpec, StateVar, bind_params
from repro.ir import FLOAT, Param, WorkBuilder
from repro.ir import expr as E


class TestFilterSpec:
    def test_peek_defaults_to_pop(self):
        spec = FilterSpec("f", pop=3, push=1)
        assert spec.peek == 3

    def test_peek_kept_when_larger(self):
        spec = FilterSpec("f", pop=2, push=1, peek=4)
        assert spec.peek == 4
        assert spec.is_peeking

    def test_not_peeking_when_equal(self):
        assert not FilterSpec("f", pop=2, push=1, peek=2).is_peeking

    def test_negative_rates_rejected(self):
        with pytest.raises(ValueError):
            FilterSpec("f", pop=-1, push=1)

    def test_source_and_sink_flags(self):
        assert FilterSpec("s", pop=0, push=1).is_source
        assert FilterSpec("k", pop=1, push=0).is_sink

    def test_out_type_defaults_to_data_type(self):
        spec = FilterSpec("f", pop=1, push=1)
        assert spec.out_type == spec.data_type

    def test_with_name(self):
        spec = FilterSpec("f", pop=1, push=1)
        assert spec.with_name("g").name == "g"
        assert spec.name == "f"  # immutability

    def test_state_var_array_flag(self):
        assert StateVar("a", FLOAT, 4).is_array
        assert not StateVar("x", FLOAT, 0).is_array


class TestBindParams:
    def _spec_with_param(self):
        b = WorkBuilder()
        b.push(b.pop() * Param("gain"))
        return FilterSpec("g", pop=1, push=1, work_body=b.build())

    def test_bind_float(self):
        bound = bind_params(self._spec_with_param(), {"gain": 2.5})
        pushed = bound.work_body[0].value
        assert pushed.right == E.FloatConst(2.5)

    def test_bind_int(self):
        bound = bind_params(self._spec_with_param(), {"gain": 3})
        assert bound.work_body[0].value.right == E.IntConst(3)

    def test_missing_param_raises(self):
        with pytest.raises(KeyError):
            bind_params(self._spec_with_param(), {})

    def test_unknown_param_raises(self):
        with pytest.raises(KeyError):
            bind_params(self._spec_with_param(), {"gain": 1.0, "typo": 2.0})

    def test_binding_reaches_init_body(self):
        b = WorkBuilder()
        x = b.var("x")
        b.set(x, Param("seed"))
        init = b.build()
        wb = WorkBuilder()
        wb.push(wb.pop())
        spec = FilterSpec("f", pop=1, push=1,
                          state=(StateVar("x", FLOAT, 0, 0.0),),
                          init_body=init, work_body=wb.build())
        bound = bind_params(spec, {"seed": 9.0})
        assert bound.init_body[0].rhs == E.FloatConst(9.0)
