"""Negative-path coverage for graph validation: every rejection branch in
:mod:`repro.graph.validate` must fire with a pointed, actionable message.

The positive paths (and the access-counting arithmetic) live in
``test_validate.py``; this file deliberately builds *broken* graphs and
asserts both that validation rejects them and what it says."""

from __future__ import annotations

import pytest

from repro.graph import (
    FilterSpec,
    GraphError,
    StreamGraph,
    collect_problems,
    duplicate_splitter,
    roundrobin_joiner,
    validate,
)
from repro.ir import WorkBuilder

from ..conftest import make_ramp_source, make_scaler


def _identity(name: str = "id") -> FilterSpec:
    b = WorkBuilder()
    b.push(b.pop())
    return FilterSpec(name, pop=1, push=1, work_body=b.build())


def _problem(graph: StreamGraph, fragment: str) -> str:
    problems = collect_problems(graph)
    matching = [p for p in problems if fragment in p]
    assert matching, f"no problem containing {fragment!r} in {problems}"
    with pytest.raises(GraphError):
        validate(graph)
    return matching[0]


class TestPortProblems:
    def test_filter_with_multiple_outputs(self):
        g = StreamGraph()
        src = g.add_actor(make_ramp_source(2, name="src"))
        a = g.add_actor(_identity("a"))
        b = g.add_actor(_identity("b"))
        g.add_tape(src.id, a.id)
        g.add_tape(src.id, b.id, src_port=1)
        _problem(g, "src: filter with multiple outputs")

    def test_splitter_missing_input(self):
        g = StreamGraph()
        sp = g.add_actor(duplicate_splitter(2), name="split")
        a = g.add_actor(_identity("a"))
        b = g.add_actor(_identity("b"))
        g.add_tape(sp.id, a.id, src_port=0)
        g.add_tape(sp.id, b.id, src_port=1)
        _problem(g, "split: splitter needs exactly 1 input")

    def test_splitter_fanout_mismatch(self):
        g = StreamGraph()
        src = g.add_actor(make_ramp_source(2, name="src"))
        sp = g.add_actor(duplicate_splitter(3), name="split")
        a = g.add_actor(_identity("a"))
        g.add_tape(src.id, sp.id)
        g.add_tape(sp.id, a.id)
        msg = _problem(g, "split: splitter has 1 outputs, expected 3")
        assert "expected 3" in msg

    def test_splitter_non_contiguous_output_ports(self):
        g = StreamGraph()
        src = g.add_actor(make_ramp_source(2, name="src"))
        sp = g.add_actor(duplicate_splitter(2), name="split")
        a = g.add_actor(_identity("a"))
        b = g.add_actor(_identity("b"))
        g.add_tape(src.id, sp.id)
        g.add_tape(sp.id, a.id, src_port=0)
        g.add_tape(sp.id, b.id, src_port=2)  # hole at port 1
        _problem(g, "split: non-contiguous output ports")

    def test_joiner_fanin_mismatch(self):
        g = StreamGraph()
        src = g.add_actor(make_ramp_source(2, name="src"))
        jn = g.add_actor(roundrobin_joiner([1, 1]), name="join")
        g.add_tape(src.id, jn.id)
        _problem(g, "join: joiner has 1 inputs, expected 2")

    def test_joiner_non_contiguous_input_ports(self):
        g = StreamGraph()
        a = g.add_actor(make_ramp_source(1, name="a"))
        b = g.add_actor(make_ramp_source(1, name="b"))
        jn = g.add_actor(roundrobin_joiner([1, 1]), name="join")
        g.add_tape(a.id, jn.id, dst_port=0)
        g.add_tape(b.id, jn.id, dst_port=3)
        _problem(g, "join: non-contiguous input ports")


class TestRateAndBodyProblems:
    def test_peek_smaller_than_pop_unrepresentable(self):
        # FilterSpec itself normalizes peek up to pop, so the invariant
        # can only be broken by bypassing the constructor — validation is
        # the backstop for hand-built spec edits.
        spec = _identity("f")
        object.__setattr__(spec, "peek", 0)
        object.__setattr__(spec, "pop", 2)
        g = StreamGraph()
        src = g.add_actor(make_ramp_source(2, name="src"))
        f = g.add_actor(spec)
        g.add_tape(src.id, f.id)
        _problem(g, "f: peek < pop")

    def test_pop_undercount_message_names_actor(self):
        b = WorkBuilder()
        b.push(b.pop())
        lying = FilterSpec("liar", pop=2, push=1, work_body=b.build())
        g = StreamGraph()
        src = g.add_actor(make_ramp_source(2, name="src"))
        f = g.add_actor(lying)
        g.add_tape(src.id, f.id)
        _problem(g, "liar: work body pops 1, declared 2")

    def test_data_dependent_loop_bound_rejected(self):
        b = WorkBuilder()
        x = b.let("x", b.pop())
        with b.loop("i", 0, x):  # non-constant bound around a push
            b.push(x)
        bad = FilterSpec("dyn", pop=1, push=1, work_body=b.build())
        g = StreamGraph()
        src = g.add_actor(make_ramp_source(2, name="src"))
        f = g.add_actor(bad)
        g.add_tape(src.id, f.id)
        _problem(g, "non-constant bounds")


class TestCycleProblems:
    def test_token_free_cycle_rejected(self):
        g = StreamGraph()
        a = g.add_actor(_identity("a"))
        b = g.add_actor(_identity("b"))
        g.add_tape(a.id, b.id)
        g.add_tape(b.id, a.id)  # no initial tokens -> deadlock
        _problem(g, "cycle without initial tokens")
