"""Tests for the DOT graph exporter."""

from repro.apps import get_benchmark
from repro.graph import flatten, to_dot
from repro.schedule import repetition_vector
from repro.simd import compile_graph
from repro.simd.machine import CORE_I7, CORE_I7_SAGU


class TestDotExport:
    def test_scalar_running_example(self):
        g = flatten(get_benchmark("RunningExample"))
        dot = to_dot(g, repetition_vector(g))
        assert dot.startswith('digraph "running_example"')
        assert dot.rstrip().endswith("}")
        assert "peek=4, pop=2, push=8" in dot  # actor G's rates
        assert 'fillcolor="#d0d0d0"' in dot    # stateful shading
        assert "x6" in dot                     # repetition annotation (A)

    def test_compiled_graph_marks_simdized_actors(self):
        g = flatten(get_benchmark("RunningExample"))
        compiled = compile_graph(g, CORE_I7).graph
        dot = to_dot(compiled)
        assert "peripheries=2" in dot          # SIMDized actors
        assert "penwidth=2.5" in dot           # vector tapes
        assert 'fillcolor="#cfe8ff"' in dot    # HSplitter/HJoiner

    def test_lane_ordered_tapes_annotated(self):
        g = flatten(get_benchmark("DCT"))
        compiled = compile_graph(g, CORE_I7_SAGU).graph
        dot = to_dot(compiled)
        if any(t.lane_ordered for t in compiled.tapes.values()):
            assert "lane-ordered" in dot

    def test_feedback_delay_edges_dashed(self):
        from repro.graph import FilterSpec, Program, feedbackloop, pipeline
        from repro.ir import WorkBuilder
        from tests.conftest import make_ramp_source, make_scaler
        b = WorkBuilder()
        b.push(b.pop() + b.pop())
        mix = FilterSpec("mix", pop=2, push=1, work_body=b.build())
        fb = feedbackloop(mix, make_scaler(0.5, name="decay"),
                          join_weights=(1, 1), duplicate_split=True,
                          enqueue=(0.0, 0.0))
        g = flatten(Program("echo", pipeline(
            make_ramp_source(1), fb, make_scaler(1.0, name="tail"))))
        dot = to_dot(g)
        assert "style=dashed" in dot
        assert "[2 delay]" in dot

    def test_every_benchmark_renders(self):
        from repro.apps import BENCHMARKS
        for name in sorted(BENCHMARKS):
            g = flatten(get_benchmark(name))
            dot = to_dot(g)
            assert dot.count("->") == len(g.tapes)

    def test_cli_dot(self, capsys):
        from repro.cli import main
        assert main(["dot", "FFT", "--compiled"]) == 0
        out = capsys.readouterr().out
        assert out.startswith("digraph")
