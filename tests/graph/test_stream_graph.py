"""Tests for the flat StreamGraph container."""

import pytest

from repro.graph import (
    FilterSpec,
    GraphError,
    StreamGraph,
    duplicate_splitter,
    roundrobin_joiner,
)

from ..conftest import make_pair_sum, make_ramp_source, make_scaler


def _chain_graph():
    g = StreamGraph("chain")
    a = g.add_actor(make_ramp_source(4))
    b = g.add_actor(make_scaler())
    c = g.add_actor(make_pair_sum())
    g.add_tape(a.id, b.id)
    g.add_tape(b.id, c.id)
    return g, a, b, c


class TestConstruction:
    def test_unique_names(self):
        g = StreamGraph()
        first = g.add_actor(make_scaler(name="f"))
        second = g.add_actor(make_scaler(name="f"))
        assert first.name == "f"
        assert second.name == "f_1"

    def test_tape_endpoints_must_exist(self):
        g = StreamGraph()
        a = g.add_actor(make_scaler())
        with pytest.raises(GraphError):
            g.add_tape(a.id, 999)

    def test_remove_actor_with_tapes_rejected(self):
        g, a, b, c = _chain_graph()
        with pytest.raises(GraphError):
            g.remove_actor(b.id)

    def test_remove_after_detach(self):
        g, a, b, c = _chain_graph()
        for tape in list(g.tapes.values()):
            g.remove_tape(tape.id)
        g.remove_actor(b.id)
        assert b.id not in g.actors


class TestQueries:
    def test_in_out_tapes(self):
        g, a, b, c = _chain_graph()
        assert [t.src for t in g.in_tapes(b.id)] == [a.id]
        assert [t.dst for t in g.out_tapes(b.id)] == [c.id]

    def test_single_input_output_helpers(self):
        g, a, b, c = _chain_graph()
        assert g.input_tape(a.id) is None
        assert g.output_tape(c.id) is None
        assert g.input_tape(b.id).src == a.id

    def test_predecessors_successors(self):
        g, a, b, c = _chain_graph()
        assert g.predecessors(c.id) == [b.id]
        assert g.successors(a.id) == [b.id]

    def test_sources_and_terminals(self):
        g, a, b, c = _chain_graph()
        assert [x.id for x in g.sources()] == [a.id]
        assert [x.id for x in g.terminals()] == [c.id]

    def test_topological_order(self):
        g, a, b, c = _chain_graph()
        assert g.topological_order() == [a.id, b.id, c.id]

    def test_cycle_detection(self):
        g, a, b, c = _chain_graph()
        g.add_tape(c.id, b.id, dst_port=0)
        with pytest.raises(GraphError):
            g.topological_order()

    def test_actor_by_name(self):
        g, a, b, c = _chain_graph()
        assert g.actor_by_name("scale").id == b.id
        with pytest.raises(KeyError):
            g.actor_by_name("nope")


class TestRates:
    def test_filter_rates(self):
        g, a, b, c = _chain_graph()
        assert g.pop_rate(c.id) == 2
        assert g.push_rate(a.id) == 4
        assert g.peek_rate(c.id) == 2

    def test_splitter_joiner_rates(self):
        g = StreamGraph()
        s = g.add_actor(duplicate_splitter(3))
        j = g.add_actor(roundrobin_joiner([2, 2, 2]))
        assert g.pop_rate(s.id) == 1
        assert g.push_rate(s.id, 1) == 1
        assert g.pop_rate(j.id, 2) == 2
        assert g.push_rate(j.id) == 6


class TestClone:
    def test_clone_preserves_ids_and_structure(self):
        g, a, b, c = _chain_graph()
        clone = g.clone()
        assert set(clone.actors) == set(g.actors)
        assert set(clone.tapes) == set(g.tapes)
        assert clone.actors[b.id].spec is g.actors[b.id].spec

    def test_clone_is_independent(self):
        g, a, b, c = _chain_graph()
        clone = g.clone()
        for tape in list(clone.tapes.values()):
            clone.remove_tape(tape.id)
        assert len(g.tapes) == 2

    def test_clone_name_uniqueness_continues(self):
        g, *_ = _chain_graph()
        clone = g.clone()
        again = clone.add_actor(make_scaler(name="scale"))
        assert again.name != "scale"
