"""Channel stall-timeout diagnostics surfaced through ``execute`` and
``macross run --cores``: a timed-out stall must say *which* channel
stalled, on *which* side, at what occupancy."""

from __future__ import annotations

import pytest

from repro.multicore.channels import Channel, ChannelStallTimeout
from repro.multicore.parallel import parallel_execute
from repro.runtime import execute
from repro.simd.machine import CORE_I7

from ..conftest import linear_program, make_ramp_source, make_scaler


class TestChannelLevel:
    def test_push_timeout_carries_structured_diagnostics(self):
        channel = Channel("tape7", capacity=2, stall_timeout=0.02)
        channel.push(1.0)
        channel.push(2.0)
        with pytest.raises(ChannelStallTimeout) as info:
            channel.push(3.0)
        exc = info.value
        assert exc.channel == "tape7"
        assert exc.side == "push"
        assert exc.occupancy == 2
        assert exc.capacity == 2
        assert exc.needed == 1
        assert exc.timeout_s == pytest.approx(0.02)
        assert "tape7" in str(exc) and "push side" in str(exc)

    def test_pop_timeout_names_the_pop_side(self):
        channel = Channel("tape9", capacity=4, stall_timeout=0.02)
        with pytest.raises(ChannelStallTimeout) as info:
            channel.pop()
        exc = info.value
        assert exc.channel == "tape9"
        assert exc.side == "pop"
        assert exc.occupancy == 0
        assert exc.needed == 1


class TestRuntimeLevel:
    def _stalling_graph(self):
        return linear_program(make_ramp_source(4),
                              make_scaler(name="slow", pop=4))

    def test_parallel_run_surfaces_stalled_channel(self):
        """A consumer paced far beyond the stall timeout deadlocks the
        producer's bounded channel; the structured exception reaches the
        caller with the channel identity intact."""
        graph = self._stalling_graph()
        actor_ids = sorted(graph.actors)
        partition = {actor_ids[0]: 0}
        partition.update({aid: 1 for aid in actor_ids[1:]})
        slow = {aid: 0.5 for aid in actor_ids[1:]}
        with pytest.raises(ChannelStallTimeout) as info:
            parallel_execute(graph, machine=CORE_I7, iterations=32,
                             cores=2, partition=partition,
                             stall_timeout=0.05, pace=slow)
        exc = info.value
        assert exc.side in ("push", "pop")
        assert exc.channel.startswith("tape")
        assert exc.capacity >= 1
        assert exc.timeout_s == pytest.approx(0.05)

    def test_execute_forwards_stall_timeout(self):
        """The ``execute(..., cores=N)`` front door forwards the timeout
        and pace knobs to the parallel runtime."""
        graph = self._stalling_graph()
        actor_ids = sorted(graph.actors)
        slow = {aid: 0.5 for aid in actor_ids[1:]}

        def split(graph_, costs, cores):
            mapping = {actor_ids[0]: 0}
            mapping.update({aid: 1 for aid in actor_ids[1:]})
            return mapping

        with pytest.raises(ChannelStallTimeout):
            execute(graph, machine=CORE_I7, iterations=32, cores=2,
                    partitioner=split, stall_timeout=0.05, pace=slow)

    def test_generous_timeout_does_not_fire(self):
        graph = self._stalling_graph()
        result = execute(graph, machine=CORE_I7, iterations=3, cores=2,
                         stall_timeout=30.0)
        assert len(result.outputs) > 0
