"""Vector-backed multicore: ``parallel_execute(..., backend="vector")``.

The nd-tape data plane must compose with the thread-based runtime: local
(intra-core) edges become :class:`NdTape`, cut edges stay bounded
:class:`Channel`\\ s with bulk block transfers, and per-core schedule
slices batch-execute through the same kernels as the sequential vector
backend — all while staying event-identical to the interpreter.
"""

from __future__ import annotations

import math

import pytest

from repro.runtime.tape import HAVE_NUMPY

pytestmark = pytest.mark.skipif(not HAVE_NUMPY,
                                reason="numpy not installed ([vector] extra)")

from repro.experiments.harness import scalar_graph
from repro.multicore import parallel_execute
from repro.runtime import execute
from repro.simd.machine import CORE_I7

APPS = ("FMRadio", "DCT", "FilterBank")
CORES = (1, 2, 4)


def canon(value):
    if isinstance(value, list):
        return tuple(canon(v) for v in value)
    return (type(value).__name__, repr(value))


@pytest.mark.parametrize("app", APPS)
@pytest.mark.parametrize("cores", CORES)
def test_parallel_vector_matches_sequential_interp(app, cores):
    graph = scalar_graph(app)
    seq = execute(graph, machine=CORE_I7, iterations=4, backend="interp")
    par = parallel_execute(graph, machine=CORE_I7, iterations=4,
                           cores=cores, backend="vector")
    assert canon(par.outputs) == canon(seq.outputs)
    assert canon(par.init_outputs) == canon(seq.init_outputs)
    # Vector-backed multicore must actually batch, not silently fall
    # back to element-at-a-time interpretation.
    assert par.batched_firings > 0, (app, cores)


@pytest.mark.parametrize("app", APPS)
def test_batched_firings_stable_across_core_counts(app):
    """Partitioning must not change *what* gets batched — every actor
    firing flows through a batch kernel regardless of placement."""
    graph = scalar_graph(app)
    counts = {cores: parallel_execute(graph, machine=CORE_I7, iterations=4,
                                      cores=cores,
                                      backend="vector").batched_firings
              for cores in CORES}
    assert len(set(counts.values())) == 1, counts


def test_vectorized_statuses_reported_from_parallel_run():
    par = parallel_execute(scalar_graph("FMRadio"), machine=CORE_I7,
                           iterations=2, cores=2, backend="vector")
    assert par.vectorized, "parallel vector run reported no statuses"
    assert all(isinstance(v, str) for v in par.vectorized.values())


def test_parallel_vector_deterministic():
    graph = scalar_graph("DCT")
    runs = [parallel_execute(graph, machine=CORE_I7, iterations=3,
                             cores=4, backend="vector") for _ in range(3)]
    assert all(canon(r.outputs) == canon(runs[0].outputs) for r in runs)
    assert all(r.batched_firings == runs[0].batched_firings for r in runs)


def test_outputs_are_plain_python_floats():
    """np scalars must never leak out of the nd data plane — sinks and
    drains hand back plain Python numbers."""
    par = parallel_execute(scalar_graph("FilterBank"), machine=CORE_I7,
                           iterations=2, cores=2, backend="vector")
    flat = [v for v in par.outputs if not isinstance(v, list)]
    assert flat and all(type(v) in (int, float) for v in flat)
    assert all(math.isfinite(v) for v in flat if type(v) is float)
