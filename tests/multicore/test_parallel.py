"""Parity suite for the thread-based parallel runtime.

The headline guarantee: for every registered app, every SIMDization
preset, both execution backends, and 1/2/4 worker cores, the parallel
executor is *event-identical* to the sequential one — same outputs, same
init outputs, same per-actor counter bags, deterministically.
"""

import pytest

from repro.apps import BENCHMARKS
from repro.fuzz.harness import _counter_bags, check_parallel
from repro.multicore import (
    ParallelExecutionResult,
    Partition,
    parallel_execute,
)
from repro.obs.tracer import Tracer
from repro.runtime import execute
from repro.runtime.errors import StreamRuntimeError
from repro.simd.machine import CORE_I7

from ..conftest import (
    linear_program,
    make_accumulator,
    make_pair_sum,
    make_ramp_source,
    make_scaler,
)


def _pipeline_graph():
    return linear_program(make_ramp_source(4), make_scaler(name="a"),
                          make_accumulator(), make_pair_sum())


# ---------------------------------------------------------------------------
# The full parity matrix, one test per registered app.


@pytest.mark.parametrize("app", sorted(BENCHMARKS))
def test_app_parity(app):
    """{scalar, auto-SIMD} x {interp, compiled[, vector]} x {1, 2, 4}
    cores x {lpt, opt} partitioners must be event-identical to
    sequential execution (one partitioner at 1 core — they coincide)."""
    from repro.experiments.harness import scalar_graph
    from repro.fuzz.harness import (
        PARALLEL_CORES,
        PARALLEL_PARTITIONERS,
        default_backends,
    )
    report = check_parallel(scalar_graph(app), stop_on_first=False)
    assert report.ok, "\n".join(
        f"{d.kind} @ {d.config}: {d.detail}" for d in report.divergences)
    backends = 1 + len(default_backends())
    core_configs = sum(1 if n == 1 else len(PARALLEL_PARTITIONERS)
                       for n in PARALLEL_CORES)
    assert report.configs_checked == 2 * backends * core_configs


def test_determinism_across_runs():
    """Same graph, same partition: two parallel runs agree bit-for-bit
    (Kahn-network determinism made observable)."""
    g = _pipeline_graph()
    runs = [parallel_execute(g, machine=CORE_I7, iterations=3, cores=2)
            for _ in range(3)]
    first = runs[0]
    for other in runs[1:]:
        assert other.outputs == first.outputs
        assert other.init_outputs == first.init_outputs
        assert (_counter_bags(other.steady_counters)
                == _counter_bags(first.steady_counters))
        assert other.partition == first.partition


# ---------------------------------------------------------------------------
# Result anatomy.


class TestResultAnatomy:
    def _run(self, cores=2):
        g = _pipeline_graph()
        seq = execute(g, machine=CORE_I7, iterations=3)
        par = parallel_execute(g, machine=CORE_I7, iterations=3, cores=cores)
        return seq, par

    def test_is_an_execution_result(self):
        _, par = self._run()
        assert isinstance(par, ParallelExecutionResult)
        assert par.cores == 2
        assert par.wall_time_s > 0

    def test_per_core_bags_merge_to_aggregate(self):
        seq, par = self._run()
        merged = {}
        for counters in par.per_core_steady.values():
            bags = _counter_bags(counters)
            assert not set(bags) & set(merged), "cores share an actor"
            merged.update(bags)
        assert merged == _counter_bags(seq.steady_counters)
        assert merged == _counter_bags(par.steady_counters)

    def test_core_cycles_sum_matches_sequential(self):
        seq, par = self._run()
        assert sum(par.core_cycles(CORE_I7)) == pytest.approx(
            seq.steady_cycles(CORE_I7))

    def test_channel_stats_cover_cut_tapes(self):
        _, par = self._run()
        g = _pipeline_graph()
        core_of = par.partition.assignment
        cut = {tid for tid, e in g.tapes.items()
               if core_of[e.src] != core_of[e.dst]}
        assert set(par.channel_stats) == cut
        for stats in par.channel_stats.values():
            assert stats["max_occupancy"] <= stats["capacity"]
        assert par.total_stalls() >= 0

    def test_single_core_partition_has_no_channels(self):
        _, par = self._run(cores=1)
        assert par.channel_stats == {}
        assert par.cores == 1


# ---------------------------------------------------------------------------
# Partition plumbing and validation.


class TestPartitionPlumbing:
    def test_explicit_dict_partition(self):
        g = _pipeline_graph()
        order = g.ordered_actors()
        mapping = {aid: (0 if i < 2 else 1) for i, aid in enumerate(order)}
        seq = execute(g, machine=CORE_I7, iterations=2)
        par = parallel_execute(g, machine=CORE_I7, iterations=2, cores=2,
                               partition=mapping)
        assert par.outputs == seq.outputs
        assert par.partition.assignment == mapping

    def test_explicit_partition_object(self):
        g = _pipeline_graph()
        part = Partition({aid: 0 for aid in g.actors}, 2)
        par = parallel_execute(g, machine=CORE_I7, iterations=2, cores=2,
                               partition=part)
        assert par.partition is part
        assert par.channel_stats == {}  # nothing crosses cores

    def test_partition_must_cover_all_actors(self):
        g = _pipeline_graph()
        some = next(iter(g.actors))
        with pytest.raises(StreamRuntimeError, match="does not cover"):
            parallel_execute(g, machine=CORE_I7, cores=2,
                             partition={some: 0})

    def test_partition_cores_must_be_in_range(self):
        g = _pipeline_graph()
        bad = {aid: 99 for aid in g.actors}
        with pytest.raises(StreamRuntimeError, match="outside range"):
            parallel_execute(g, machine=CORE_I7, cores=2, partition=bad)

    def test_custom_partitioner_is_used(self):
        from repro.multicore import partition_contiguous
        g = _pipeline_graph()
        par = parallel_execute(g, machine=CORE_I7, iterations=2, cores=2,
                               partitioner=partition_contiguous)
        order = g.ordered_actors()
        cores = [par.partition.assignment[aid] for aid in order]
        assert cores == sorted(cores)  # contiguous slices


# ---------------------------------------------------------------------------
# execute() front door.


class TestExecuteFrontDoor:
    def test_cores_kwarg_delegates(self):
        g = _pipeline_graph()
        seq = execute(g, machine=CORE_I7, iterations=2)
        par = execute(g, machine=CORE_I7, iterations=2, cores=2)
        assert isinstance(par, ParallelExecutionResult)
        assert par.outputs == seq.outputs

    def test_partitioner_kwarg_alone_delegates(self):
        from repro.multicore import partition_lpt
        g = _pipeline_graph()
        result = execute(g, machine=CORE_I7, iterations=2,
                         partitioner=partition_lpt)
        assert isinstance(result, ParallelExecutionResult)

    def test_zero_cores_rejected(self):
        g = _pipeline_graph()
        with pytest.raises(StreamRuntimeError):
            execute(g, machine=CORE_I7, cores=0)

    def test_cores_one_stays_sequential(self):
        g = _pipeline_graph()
        result = execute(g, machine=CORE_I7, iterations=2, cores=1)
        assert not isinstance(result, ParallelExecutionResult)


# ---------------------------------------------------------------------------
# Tracing and pacing.


class TestObservability:
    def test_core_spans_and_channel_instants(self):
        g = _pipeline_graph()
        tracer = Tracer()
        parallel_execute(g, machine=CORE_I7, iterations=2, cores=2,
                         tracer=tracer)
        span_names = {e.name for e in tracer.spans()}
        assert "parallel_execute" in span_names
        assert {"core0", "core0.init", "core0.steady",
                "core1", "core1.init", "core1.steady"} <= span_names
        channel_events = [e for e in tracer.events if e.cat == "channel"]
        assert any(e.name.startswith("channel.tape")
                   for e in channel_events)

    def test_pace_smoke(self):
        """A paced run still matches sequential outputs and takes at
        least the owed wall time."""
        g = _pipeline_graph()
        seq = execute(g, machine=CORE_I7, iterations=2)
        pace = {aid: 0.001 for aid in g.actors}
        par = parallel_execute(g, machine=CORE_I7, iterations=2, cores=2,
                               pace=pace)
        assert par.outputs == seq.outputs
        assert par.wall_time_s > 0

    def test_calibrated_pace_proportional_to_cycles(self):
        from repro.multicore import calibrated_pace
        g = _pipeline_graph()
        pace = calibrated_pace(g, CORE_I7, seconds_per_cycle=1e-6)
        assert pace, "calibrated pace must cover the firing actors"
        assert all(cost > 0 for cost in pace.values())
        # Doubling the scale doubles every per-firing cost.
        double = calibrated_pace(g, CORE_I7, seconds_per_cycle=2e-6)
        for aid, cost in pace.items():
            assert double[aid] == pytest.approx(2 * cost)
