"""Tests for bounded cross-core channels and the capacity planner."""

import threading
import time

import pytest

from repro.graph import flatten
from repro.multicore import (
    Channel,
    ChannelAborted,
    ChannelError,
    ChannelStallTimeout,
    plan_capacities,
    sequential_max_occupancy,
    steady_crossings,
)
from repro.multicore.channels import RunAbort
from repro.obs.tracer import Tracer
from repro.schedule import build_schedule

from ..conftest import (
    linear_program,
    make_pair_sum,
    make_ramp_source,
    make_scaler,
)

JOIN_S = 5.0  # generous thread-join bound; every wait below is ~ms scale


def _spawn(fn):
    thread = threading.Thread(target=fn, daemon=True)
    thread.start()
    return thread


class TestChannelBasics:
    def test_fifo_order(self):
        ch = Channel("t", capacity=8)
        for i in range(5):
            ch.push(float(i))
        assert [ch.pop() for _ in range(5)] == [0.0, 1.0, 2.0, 3.0, 4.0]

    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            Channel("t", capacity=0)

    def test_peek_does_not_consume(self):
        ch = Channel("t", capacity=4)
        ch.push(7.0)
        ch.push(8.0)
        assert ch.peek(0) == 7.0
        assert ch.peek(1) == 8.0
        assert len(ch) == 2

    def test_negative_peek_rejected(self):
        ch = Channel("t", capacity=4)
        with pytest.raises(ValueError):
            ch.peek(-1)

    def test_preload_sets_initial_items(self):
        ch = Channel("t", capacity=4)
        ch.preload([1.0, 2.0])
        assert len(ch) == 2
        assert ch.pop() == 1.0

    def test_preload_beyond_capacity_rejected(self):
        ch = Channel("t", capacity=2)
        with pytest.raises(ChannelError):
            ch.preload([1.0, 2.0, 3.0])

    def test_rpush_stages_without_commit(self):
        """SIMDized writers stage with rpush then commit via
        advance_writer — readers must not see staged items."""
        ch = Channel("t", capacity=8)
        ch.rpush(1.0, 0)
        ch.rpush(2.0, 1)
        assert len(ch) == 0  # staged, not committed
        ch.advance_writer(2)
        assert len(ch) == 2
        assert ch.pop() == 1.0

    def test_advance_reader_bulk_pop(self):
        ch = Channel("t", capacity=8)
        for i in range(4):
            ch.push(float(i))
        ch.advance_reader(3)
        assert ch.pop() == 3.0


class TestBlocking:
    def test_push_blocks_at_capacity_until_pop(self):
        ch = Channel("t", capacity=2, stall_timeout=JOIN_S)
        ch.push(0.0)
        ch.push(1.0)
        done = threading.Event()

        def producer():
            ch.push(2.0)  # must block: channel full
            done.set()

        thread = _spawn(producer)
        time.sleep(0.05)
        assert not done.is_set(), "push must block at capacity"
        assert ch.pop() == 0.0  # drains one slot, unblocks producer
        thread.join(JOIN_S)
        assert done.is_set()
        assert ch.stats.push_stalls >= 1

    def test_pop_blocks_until_push(self):
        ch = Channel("t", capacity=2, stall_timeout=JOIN_S)
        got = []

        def consumer():
            got.append(ch.pop())  # must block: channel empty

        thread = _spawn(consumer)
        time.sleep(0.05)
        assert not got, "pop must block on empty channel"
        ch.push(42.0)
        thread.join(JOIN_S)
        assert got == [42.0]
        assert ch.stats.pop_stalls >= 1

    def test_peek_blocks_until_enough_committed(self):
        ch = Channel("t", capacity=4, stall_timeout=JOIN_S)
        ch.push(1.0)
        got = []
        thread = _spawn(lambda: got.append(ch.peek(1)))
        time.sleep(0.05)
        assert not got
        ch.push(2.0)
        thread.join(JOIN_S)
        assert got == [2.0]

    def test_stall_timeout_raises(self):
        ch = Channel("t", capacity=1, stall_timeout=0.15)
        with pytest.raises(ChannelStallTimeout):
            ch.pop()

    def test_abort_unblocks_waiters(self):
        abort = RunAbort()
        ch = Channel("t", capacity=1, abort=abort, stall_timeout=JOIN_S)
        raised = threading.Event()

        def consumer():
            try:
                ch.pop()
            except ChannelAborted:
                raised.set()

        thread = _spawn(consumer)
        time.sleep(0.05)
        abort.trip(RuntimeError("peer died"))
        thread.join(JOIN_S)
        assert raised.is_set()
        assert abort.tripped


class TestStatsAndTracing:
    def test_stats_counts(self):
        ch = Channel("t", capacity=4)
        for i in range(3):
            ch.push(float(i))
        ch.pop()
        snap = ch.stats.snapshot()
        assert snap["pushes"] == 3
        assert snap["pops"] == 1
        assert snap["max_occupancy"] == 3
        assert snap["capacity"] == 4

    def test_stall_emits_tracer_instant(self):
        tracer = Tracer()
        ch = Channel("t", capacity=4, tracer=tracer, stall_timeout=JOIN_S)
        thread = _spawn(lambda: ch.pop())
        time.sleep(0.05)
        ch.push(1.0)
        thread.join(JOIN_S)
        stalls = [e for e in tracer.events if e.name == "channel.stall"]
        assert stalls, "blocked pop must emit a channel.stall instant"
        assert stalls[0].cat == "channel"
        assert stalls[0].args["side"] == "pop"
        assert stalls[0].args["channel"] == "t"


class TestCapacityPlanner:
    def _graph(self):
        return linear_program(make_ramp_source(4), make_scaler(name="a"),
                              make_pair_sum())

    def test_steady_crossings_match_rates(self):
        g = self._graph()
        schedule = build_schedule(g)
        crossings = steady_crossings(g, schedule)
        for tid, edge in g.tapes.items():
            expected = schedule.reps[edge.src] * g.push_rate(edge.src,
                                                             edge.src_port)
            assert crossings[tid] == expected

    def test_max_occupancy_at_least_one_firing(self):
        """Every tape must reach at least one producer firing's worth of
        occupancy under the sequential schedule."""
        g = self._graph()
        schedule = build_schedule(g)
        high = sequential_max_occupancy(g, schedule)
        for tid, edge in g.tapes.items():
            assert high[tid] >= g.push_rate(edge.src, edge.src_port)

    def test_plan_formula(self):
        g = self._graph()
        schedule = build_schedule(g)
        high = sequential_max_occupancy(g, schedule)
        crossings = steady_crossings(g, schedule)
        tids = list(g.tapes)
        plan = plan_capacities(g, schedule, tids, slack_iterations=1)
        for tid in tids:
            assert plan[tid] == max(1, high[tid]) + crossings[tid]

    def test_plan_covers_requested_tapes_only(self):
        g = self._graph()
        schedule = build_schedule(g)
        tid = next(iter(g.tapes))
        plan = plan_capacities(g, schedule, [tid])
        assert set(plan) == {tid}

    def test_real_benchmark_plans_are_positive(self):
        from repro.apps import get_benchmark
        g = flatten(get_benchmark("FilterBank"))
        schedule = build_schedule(g)
        plan = plan_capacities(g, schedule, list(g.tapes))
        assert all(cap >= 1 for cap in plan.values())
