"""Tests for the multicore makespan simulation (Figure 13's model)."""

import pytest

from repro.apps import get_benchmark
from repro.graph import flatten
from repro.multicore import (
    multicore_speedups,
    profile_actor_costs,
    simulate_multicore,
)
from repro.runtime import execute
from repro.simd.machine import CORE_I7

from ..conftest import linear_program, make_pair_sum, make_ramp_source, make_scaler


def _graph():
    return linear_program(make_ramp_source(8),
                          make_scaler(name="a", pop=4),
                          make_scaler(name="b", pop=4),
                          make_pair_sum())


class TestProfile:
    def test_costs_cover_all_actors(self):
        g = _graph()
        costs = profile_actor_costs(g, CORE_I7)
        assert set(costs) == set(g.actors)
        assert all(c >= 0 for c in costs.values())


class TestSimulation:
    def test_single_core_matches_total(self):
        g = _graph()
        result = simulate_multicore(g, CORE_I7, 1)
        baseline = execute(g, machine=CORE_I7, iterations=2)
        expected = (baseline.steady_cycles(CORE_I7)
                    / len(baseline.outputs))
        assert result.makespan_per_output == pytest.approx(expected)
        assert result.comm_cycles == 0

    def test_two_cores_split_compute_heavy_load(self):
        g = flatten(get_benchmark("MP3Decoder"))
        one = simulate_multicore(g, CORE_I7, 1)
        two = simulate_multicore(g, CORE_I7, 2)
        assert two.makespan_per_output < one.makespan_per_output
        assert two.comm_cycles > 0

    def test_comm_heavy_graph_can_lose_on_two_cores(self):
        """Cache-line ping-pong makes fine-grained pipelines slower on two
        cores — the slowdown case §1 of the paper mentions."""
        g = _graph()
        one = simulate_multicore(g, CORE_I7, 1)
        two = simulate_multicore(g, CORE_I7, 2)
        assert two.comm_cycles > 0
        assert two.makespan_per_output > one.makespan_per_output

    def test_macro_simd_variant_faster(self):
        g = flatten(get_benchmark("DCT"))
        scalar = simulate_multicore(g, CORE_I7, 2, macro_simd=False)
        simd = simulate_multicore(g, CORE_I7, 2, macro_simd=True)
        assert simd.makespan_per_output < scalar.makespan_per_output

    def test_core_loads_length(self):
        g = _graph()
        result = simulate_multicore(g, CORE_I7, 4)
        assert len(result.core_loads) == 4
        assert max(result.core_loads) <= result.makespan_per_output + 1e-9


class TestFigure13Claims:
    def test_two_core_simd_beats_four_core_scalar(self):
        """The paper's headline Figure 13 claim, on a representative app."""
        g = flatten(get_benchmark("MP3Decoder"))
        row = multicore_speedups(g, CORE_I7, [2, 4])
        assert row["2c+simd"] >= row["4c"] * 0.95

    def test_speedups_increase_with_simd(self):
        g = flatten(get_benchmark("FilterBank"))
        row = multicore_speedups(g, CORE_I7, [2])
        assert row["2c+simd"] > row["2c"]
