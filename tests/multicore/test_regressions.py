"""Regression tests for the multicore cost-model bugfixes.

Three defects, each pinned so it cannot quietly return:

1. ``MacroSSOptions`` used to be a *shared mutable default* in four
   signatures (``compile_graph``, ``Variants.macro_graph``,
   ``Variants.macro_cpo``, ``simulate_multicore``) — one caller mutating
   its options could change every later call's behaviour.  The fix is
   two-pronged: the dataclass is frozen, and every default is ``None``
   with per-call instantiation.
2. ``multicore_speedups`` silently dropped ``partitioner`` / ``options``
   / ``iterations`` instead of forwarding them to ``simulate_multicore``,
   making the partitioner ablation a no-op through that entry point.
3. ``simulate_multicore`` masked "no steady-state output" with
   ``max(1, len(outputs))``, reporting a meaningless finite makespan; it
   now raises :class:`StreamRuntimeError` like ``cycles_per_output``.

Plus a pin of the *deliberate* communication-accounting semantics:
receiver-only charge, steady-state crossings only (paper §5).
"""

import dataclasses
import inspect

import pytest

from repro.experiments.harness import Variants
from repro.graph import FilterSpec, StateVar
from repro.multicore import (
    Partition,
    multicore_speedups,
    partition_contiguous,
    partition_lpt,
    simulate_multicore,
)
from repro.perf import events as ev
from repro.runtime import execute
from repro.runtime.errors import StreamRuntimeError
from repro.ir import FLOAT, WorkBuilder
from repro.simd.machine import CORE_I7
from repro.simd.pipeline import SCALAR_OPTIONS, MacroSSOptions, compile_graph

from ..conftest import linear_program, make_ramp_source, make_scaler


# ---------------------------------------------------------------------------
# Bugfix 1: shared-mutable-default options.


OPTIONS_TAKERS = [
    compile_graph,
    Variants.macro_graph,
    Variants.macro_cpo,
    simulate_multicore,
]


@pytest.mark.parametrize("fn", OPTIONS_TAKERS,
                         ids=lambda fn: fn.__qualname__)
def test_options_default_is_none_not_shared_instance(fn):
    """No signature may hold a ``MacroSSOptions`` *instance* as its
    default (that instance would be shared by every call ever made)."""
    default = inspect.signature(fn).parameters["options"].default
    assert default is None, (
        f"{fn.__qualname__} holds a shared MacroSSOptions default: "
        f"{default!r}")


def test_options_dataclass_is_frozen():
    options = MacroSSOptions()
    with pytest.raises(dataclasses.FrozenInstanceError):
        options.vertical = False  # type: ignore[misc]


def test_compile_graph_calls_do_not_share_options_state():
    """Two bare calls must each see pristine defaults: the report of a
    default-options compile never reflects another call's preset."""
    g = linear_program(make_ramp_source(4), make_scaler(name="a"))
    scalar_report = compile_graph(g, CORE_I7, SCALAR_OPTIONS).report
    default_report = compile_graph(g, CORE_I7).report
    assert scalar_report.options == SCALAR_OPTIONS
    assert default_report.options == MacroSSOptions()
    assert default_report.options != SCALAR_OPTIONS


# ---------------------------------------------------------------------------
# Bugfix 2: multicore_speedups kwarg plumbing.


def _heavy(name: str = "heavy") -> FilterSpec:
    """A deliberately expensive stateful filter (dominates the profile)."""
    b = WorkBuilder()
    acc = b.var("acc")
    b.set(acc, b.pop())
    with b.loop("i", 0, 64):
        b.set(acc, acc * 1.0000001 + 0.5)
    b.push(acc)
    return FilterSpec(name, pop=1, push=1,
                      state=(StateVar("acc", FLOAT, 0, 0.0),),
                      work_body=b.build())


def _skewed_graph():
    """One dominant actor early in the pipeline: contiguous slicing and
    LPT provably disagree about where to cut."""
    return linear_program(make_ramp_source(4), _heavy(),
                          make_scaler(name="a"), make_scaler(name="b"),
                          make_scaler(name="c"))


def test_partitioner_is_forwarded_to_simulation():
    g = _skewed_graph()
    lpt = multicore_speedups(g, CORE_I7, [2], partitioner=partition_lpt)
    contiguous = multicore_speedups(g, CORE_I7, [2],
                                    partitioner=partition_contiguous)
    # The two partitioners produce different cuts on the skewed graph, so
    # forwarding must change the modeled speedup.  (Pre-fix, the kwarg was
    # dropped and both rows came out identical.)
    assert lpt["2c"] != pytest.approx(contiguous["2c"])


def test_partitioners_really_disagree_on_the_skewed_graph():
    """Sanity for the test above: the disagreement is in the partitions
    themselves, not an accident of the makespan arithmetic."""
    g = _skewed_graph()
    costs = {aid: 1.0 for aid in g.actors}
    heavy = g.actor_by_name("heavy").id
    costs[heavy] = 100.0
    assert (partition_lpt(g, costs, 2).assignment
            != partition_contiguous(g, costs, 2).assignment)


def test_options_are_forwarded_to_simulation():
    from repro.apps import get_benchmark
    from repro.graph import flatten
    g = flatten(get_benchmark("FilterBank"))
    default = multicore_speedups(g, CORE_I7, [2])
    scalar_opts = multicore_speedups(g, CORE_I7, [2], options=SCALAR_OPTIONS)
    # With SIMDization disabled the "+simd" column degenerates to the
    # scalar column; with defaults it must not.  (Pre-fix, ``options`` was
    # dropped, so both rows used the default preset.)
    assert scalar_opts["2c+simd"] == pytest.approx(scalar_opts["2c"])
    assert default["2c+simd"] > default["2c"]


def test_iterations_are_forwarded():
    """Per-output metrics are iteration-invariant, so forwarding a
    different iteration count must reproduce the same row (and not
    crash)."""
    g = _skewed_graph()
    two = multicore_speedups(g, CORE_I7, [2], iterations=2)
    three = multicore_speedups(g, CORE_I7, [2], iterations=3)
    for key in two:
        assert two[key] == pytest.approx(three[key])


# ---------------------------------------------------------------------------
# Bugfix 3: no-output masking.


def _sink(name: str = "sink") -> FilterSpec:
    """pop 1, push 0: consumes the stream, produces nothing."""
    b = WorkBuilder()
    b.let("x", b.pop())
    return FilterSpec(name, pop=1, push=0, work_body=b.build())


def test_no_output_graph_raises_instead_of_masking():
    g = linear_program(make_ramp_source(4), make_scaler(name="a"), _sink())
    with pytest.raises(StreamRuntimeError, match="no steady-state output"):
        simulate_multicore(g, CORE_I7, 2)


def test_no_output_matches_cycles_per_output_contract():
    """The masking fix aligns simulate_multicore with the executor's own
    per-output contract."""
    g = linear_program(make_ramp_source(4), make_scaler(name="a"), _sink())
    result = execute(g, machine=CORE_I7, iterations=2)
    with pytest.raises(StreamRuntimeError):
        result.cycles_per_output(CORE_I7)


# ---------------------------------------------------------------------------
# Deliberate comm-accounting semantics (receiver-only, steady-only).


def test_comm_charged_to_receiving_core_only():
    g = linear_program(make_ramp_source(4), make_scaler(name="a"),
                       make_scaler(name="b"))
    src = g.actor_by_name("src").id
    a = g.actor_by_name("a").id
    b = g.actor_by_name("b").id

    def cut_after_src(graph, costs, cores):
        return Partition({src: 0, a: 1, b: 1}, 2)

    iterations = 2
    res = simulate_multicore(g, CORE_I7, 2, partitioner=cut_after_src,
                             iterations=iterations)
    seq = execute(g, machine=CORE_I7, iterations=iterations)
    per_actor = seq.actor_cycles(CORE_I7)
    outputs = len(seq.outputs)

    # The sending core's load is *pure compute* — no transfer surcharge.
    assert res.core_loads[0] == pytest.approx(per_actor[src] / outputs)

    # Only steady-state crossings are priced: reps[src] * push_rate items
    # per steady iteration, nothing for init priming.
    (tape,) = [t for t in g.tapes.values() if t.src == src]
    items = seq.schedule.reps[src] * g.push_rate(src, tape.src_port)
    expected_comm = items * iterations * CORE_I7.price(ev.COMM)
    assert res.comm_cycles == pytest.approx(expected_comm / outputs)

    # ... and the whole charge lands on the receiving core.
    assert res.core_loads[1] == pytest.approx(
        (per_actor[a] + per_actor[b] + expected_comm) / outputs)


def test_same_core_tapes_are_free():
    g = linear_program(make_ramp_source(4), make_scaler(name="a"))

    def all_on_one(graph, costs, cores):
        return Partition({aid: 0 for aid in graph.actors}, cores)

    res = simulate_multicore(g, CORE_I7, 2, partitioner=all_on_one)
    assert res.comm_cycles == 0
