"""Tests for the multicore partitioners."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.multicore import partition_contiguous, partition_lpt

from ..conftest import linear_program, make_pair_sum, make_ramp_source, make_scaler


def _graph():
    return linear_program(make_ramp_source(4),
                          make_scaler(name="a"),
                          make_scaler(name="b"),
                          make_pair_sum())


class TestLPT:
    def test_every_actor_assigned(self):
        g = _graph()
        part = partition_lpt(g, {aid: 1.0 for aid in g.actors}, 2)
        assert set(part.assignment) == set(g.actors)
        assert set(part.assignment.values()) <= {0, 1}

    def test_single_core(self):
        g = _graph()
        part = partition_lpt(g, {aid: 1.0 for aid in g.actors}, 1)
        assert set(part.assignment.values()) == {0}

    def test_balances_loads(self):
        g = _graph()
        costs = {aid: float(aid + 1) for aid in g.actors}
        part = partition_lpt(g, costs, 2)
        loads = part.loads(costs)
        assert max(loads) - min(loads) <= max(costs.values())

    def test_heaviest_actor_first(self):
        g = _graph()
        heavy = g.actor_by_name("a").id
        costs = {aid: 1.0 for aid in g.actors}
        costs[heavy] = 100.0
        part = partition_lpt(g, costs, 2)
        # The heavy actor is alone-ish: its core has no other heavy work.
        heavy_core = part.assignment[heavy]
        others = [aid for aid, core in part.assignment.items()
                  if core == heavy_core and aid != heavy]
        assert len(others) <= 1

    def test_deterministic(self):
        g = _graph()
        costs = {aid: 1.0 for aid in g.actors}
        assert (partition_lpt(g, costs, 2).assignment
                == partition_lpt(g, costs, 2).assignment)


class TestContiguous:
    def test_topological_slices(self):
        g = _graph()
        costs = {aid: 1.0 for aid in g.actors}
        part = partition_contiguous(g, costs, 2)
        order = g.topological_order()
        cores = [part.assignment[aid] for aid in order]
        assert cores == sorted(cores)  # non-decreasing along the pipeline

    def test_uses_all_cores_when_enough_work(self):
        g = _graph()
        costs = {aid: 10.0 for aid in g.actors}
        part = partition_contiguous(g, costs, 2)
        assert set(part.assignment.values()) == {0, 1}


PARTITIONERS = [partition_lpt, partition_contiguous]
_IDS = ["lpt", "contiguous"]


class TestEdgeCases:
    """Contract edge cases shared by every partitioner."""

    @pytest.mark.parametrize("partitioner", PARTITIONERS, ids=_IDS)
    def test_zero_cores_rejected(self, partitioner):
        g = _graph()
        costs = {aid: 1.0 for aid in g.actors}
        with pytest.raises(ValueError):
            partitioner(g, costs, 0)
        with pytest.raises(ValueError):
            partitioner(g, costs, -3)

    @pytest.mark.parametrize("partitioner", PARTITIONERS, ids=_IDS)
    def test_more_cores_than_actors(self, partitioner):
        g = _graph()
        costs = {aid: 1.0 for aid in g.actors}
        cores = len(g.actors) + 5
        part = partitioner(g, costs, cores)
        assert set(part.assignment) == set(g.actors)
        assert all(0 <= core < cores for core in part.assignment.values())
        # Trailing cores stay empty but still report a (zero) load.
        assert len(part.loads(costs)) == cores

    @pytest.mark.parametrize("partitioner", PARTITIONERS, ids=_IDS)
    def test_all_zero_costs(self, partitioner):
        g = _graph()
        costs = {aid: 0.0 for aid in g.actors}
        part = partitioner(g, costs, 2)
        assert set(part.assignment) == set(g.actors)
        assert all(core in (0, 1) for core in part.assignment.values())

    @pytest.mark.parametrize("partitioner", PARTITIONERS, ids=_IDS)
    def test_missing_costs_treated_as_zero(self, partitioner):
        g = _graph()
        part = partitioner(g, {}, 2)
        assert set(part.assignment) == set(g.actors)


class TestProperties:
    """Hypothesis: total assignment + in-range cores for arbitrary cost
    maps and core counts (the invariants the parallel runtime's partition
    normalisation relies on)."""

    @pytest.mark.parametrize("partitioner", PARTITIONERS, ids=_IDS)
    @settings(max_examples=30, deadline=None)
    @given(data=st.data(),
           cores=st.integers(min_value=1, max_value=6))
    def test_total_in_range_assignment(self, partitioner, data, cores):
        g = _graph()
        costs = {aid: data.draw(st.floats(min_value=0.0, max_value=1e6,
                                          allow_nan=False),
                                label=f"cost[{aid}]")
                 for aid in g.actors}
        part = partitioner(g, costs, cores)
        assert set(part.assignment) == set(g.actors)  # total
        assert all(0 <= core < cores
                   for core in part.assignment.values())  # in range
        assert part.cores == cores
        loads = part.loads(costs)
        assert len(loads) == cores
        assert sum(loads) == pytest.approx(sum(costs.values()))
