"""Tests for the multicore partitioners."""

from repro.multicore import partition_contiguous, partition_lpt

from ..conftest import linear_program, make_pair_sum, make_ramp_source, make_scaler


def _graph():
    return linear_program(make_ramp_source(4),
                          make_scaler(name="a"),
                          make_scaler(name="b"),
                          make_pair_sum())


class TestLPT:
    def test_every_actor_assigned(self):
        g = _graph()
        part = partition_lpt(g, {aid: 1.0 for aid in g.actors}, 2)
        assert set(part.assignment) == set(g.actors)
        assert set(part.assignment.values()) <= {0, 1}

    def test_single_core(self):
        g = _graph()
        part = partition_lpt(g, {aid: 1.0 for aid in g.actors}, 1)
        assert set(part.assignment.values()) == {0}

    def test_balances_loads(self):
        g = _graph()
        costs = {aid: float(aid + 1) for aid in g.actors}
        part = partition_lpt(g, costs, 2)
        loads = part.loads(costs)
        assert max(loads) - min(loads) <= max(costs.values())

    def test_heaviest_actor_first(self):
        g = _graph()
        heavy = g.actor_by_name("a").id
        costs = {aid: 1.0 for aid in g.actors}
        costs[heavy] = 100.0
        part = partition_lpt(g, costs, 2)
        # The heavy actor is alone-ish: its core has no other heavy work.
        heavy_core = part.assignment[heavy]
        others = [aid for aid, core in part.assignment.items()
                  if core == heavy_core and aid != heavy]
        assert len(others) <= 1

    def test_deterministic(self):
        g = _graph()
        costs = {aid: 1.0 for aid in g.actors}
        assert (partition_lpt(g, costs, 2).assignment
                == partition_lpt(g, costs, 2).assignment)


class TestContiguous:
    def test_topological_slices(self):
        g = _graph()
        costs = {aid: 1.0 for aid in g.actors}
        part = partition_contiguous(g, costs, 2)
        order = g.topological_order()
        cores = [part.assignment[aid] for aid in order]
        assert cores == sorted(cores)  # non-decreasing along the pipeline

    def test_uses_all_cores_when_enough_work(self):
        g = _graph()
        costs = {aid: 10.0 for aid in g.actors}
        part = partition_contiguous(g, costs, 2)
        assert set(part.assignment.values()) == {0, 1}
