"""Shared-memory result transport: staging/loading round trips, the
threshold gate, degrade-to-queue behaviour, envelope validation, and the
parent-side segment registry.  All in-process (no worker spawns)."""

from __future__ import annotations

import pickle

import pytest

from repro.serve import (
    SegmentRegistry,
    ServeError,
    load_result_shm,
    segment_names,
    shm_threshold_default,
    stage_result_shm,
)


def _segment_exists(name: str) -> bool:
    from multiprocessing import shared_memory
    try:
        shm = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    shm.close()
    return True


def _stage(wire, *, seq=1, threshold=0, uid="t", worker=0):
    return stage_result_shm(wire, uid=uid, worker=worker, seq=seq,
                            threshold=threshold)


class TestRoundTrip:
    def test_int_and_float_fields_round_trip(self):
        outputs = list(range(100))
        inits = [0.25 * i for i in range(64)]
        wire = {"outputs": list(outputs), "init_outputs": list(inits)}
        staged = _stage(wire)
        assert set(staged["shm"]) == {"outputs", "init_outputs"}
        assert staged["outputs"] == [] and staged["init_outputs"] == []
        # The identical pickle hop the result queue performs.
        back = load_result_shm(pickle.loads(pickle.dumps(staged)))
        assert back["outputs"] == outputs
        assert back["init_outputs"] == inits
        assert "shm" not in back

    def test_load_unlinks_the_segments(self):
        staged = _stage({"outputs": [1, 2, 3]}, seq=7)
        name = staged["shm"]["outputs"]["name"]
        assert _segment_exists(name)
        load_result_shm(staged)
        assert not _segment_exists(name)

    def test_deterministic_segment_names(self):
        names = segment_names("abcd", 3, 41)
        assert names == ("mxabcdw3s41o", "mxabcdw3s41i")
        staged = _stage({"outputs": [1, 2]}, uid="abcd", worker=3, seq=41)
        assert staged["shm"]["outputs"]["name"] == names[0]
        load_result_shm(staged)

    def test_queue_wire_passes_through_untouched(self):
        wire = {"outputs": [1.0, 2.0], "error": None}
        assert load_result_shm(dict(wire)) == wire


class TestThresholdAndFallback:
    def test_small_results_stay_on_the_queue(self):
        staged = _stage({"outputs": [1, 2, 3]}, threshold=4)
        assert "shm" not in staged
        assert staged["outputs"] == [1, 2, 3]

    def test_threshold_zero_forces_shm(self):
        staged = _stage({"outputs": [1]}, threshold=0)
        assert "shm" in staged
        load_result_shm(staged)

    def test_mixed_types_fall_back_to_queue(self):
        # int/float mixes and bools are not representable as one typed
        # array; the parity oracle needs exact types back, so they ride
        # the queue.
        for values in ([1, 2.0], [True, False], [1, True], ["a", "b"]):
            staged = _stage({"outputs": list(values)})
            assert "shm" not in staged
            assert staged["outputs"] == values

    def test_huge_ints_fall_back_to_queue(self):
        values = [2 ** 80, 1]
        staged = _stage({"outputs": list(values)})
        assert "shm" not in staged
        assert staged["outputs"] == values

    def test_empty_fields_are_ignored(self):
        staged = _stage({"outputs": [], "init_outputs": []})
        assert "shm" not in staged

    def test_stale_segment_is_taken_over(self):
        """A killed predecessor's segment under the same deterministic
        name must not poison the retry: staging destroys and recreates."""
        first = _stage({"outputs": [1, 2, 3]}, seq=99)
        name = first["shm"]["outputs"]["name"]
        assert _segment_exists(name)  # deliberately left behind
        second = _stage({"outputs": [7, 8, 9, 10]}, seq=99)
        back = load_result_shm(second)
        assert back["outputs"] == [7, 8, 9, 10]
        assert not _segment_exists(name)

    def test_env_var_overrides_default_threshold(self, monkeypatch):
        monkeypatch.delenv("MACROSS_SHM_THRESHOLD", raising=False)
        assert shm_threshold_default() == 256
        monkeypatch.setenv("MACROSS_SHM_THRESHOLD", "17")
        assert shm_threshold_default() == 17
        monkeypatch.setenv("MACROSS_SHM_THRESHOLD", "lots")
        with pytest.raises(ServeError):
            shm_threshold_default()


class TestEnvelopeValidation:
    """The oracle's mutation tests corrupt exactly this surface."""

    def _staged(self, seq=11):
        return _stage({"outputs": [1, 2, 3, 4]}, seq=seq)

    def test_unknown_field_is_rejected(self):
        staged = self._staged()
        staged["shm"]["bogus"] = dict(staged["shm"]["outputs"])
        with pytest.raises(ServeError, match="unknown shm-borne field"):
            load_result_shm(staged)

    def test_bad_typecode_is_rejected(self):
        staged = self._staged(seq=12)
        staged["shm"]["outputs"]["typecode"] = "x"
        with pytest.raises(ServeError, match="malformed shm envelope"):
            load_result_shm(staged)
        SegmentRegistry().expect(12, segment_names("t", 0, 12))

    def test_overclaimed_count_is_rejected(self):
        staged = self._staged(seq=13)
        staged["shm"]["outputs"]["count"] = 10 ** 6
        with pytest.raises(ServeError, match="claims"):
            load_result_shm(staged)

    def test_vanished_segment_is_reported(self):
        staged = self._staged(seq=14)
        load_result_shm(pickle.loads(pickle.dumps(staged)))  # unlinks
        with pytest.raises(ServeError, match="vanished"):
            load_result_shm(staged)

    def teardown_method(self):
        # None of the rejection paths may leak the segment forever: the
        # pool-side registry scavenges by deterministic name.
        registry = SegmentRegistry()
        for seq in (11, 12, 13, 14):
            registry.expect(seq, segment_names("t", 0, seq))
        registry.scavenge_all()


class TestSegmentRegistry:
    def test_resolve_destroys_unconsumed_segments(self):
        staged = _stage({"outputs": [5, 6, 7]}, seq=21)
        name = staged["shm"]["outputs"]["name"]
        registry = SegmentRegistry()
        registry.expect(21, segment_names("t", 0, 21))
        assert len(registry) == 1
        registry.resolve(21)
        assert len(registry) == 0
        assert not _segment_exists(name)

    def test_scavenge_counts_destroyed_segments(self):
        staged = _stage({"outputs": [5, 6, 7]}, seq=22)
        registry = SegmentRegistry()
        registry.expect(22, segment_names("t", 0, 22))
        registry.expect(23, segment_names("t", 0, 23))  # never created
        assert registry.scavenge(22) == 1
        assert registry.scavenge(23) == 0
        assert len(registry) == 0
        assert not _segment_exists(staged["shm"]["outputs"]["name"])

    def test_scavenge_all_empties_the_ledger(self):
        registry = SegmentRegistry()
        for seq in range(5):
            registry.expect(seq, segment_names("t", 0, seq))
        registry.scavenge_all()
        assert len(registry) == 0
        assert registry.outstanding() == {}
