"""Worker supervision: SIGKILL fault injection against live pools.

The contract under test — killing a worker mid-campaign loses zero
sessions: every admitted ticket resolves to either a successful result
(``retried`` when its first lane died under it) or a typed
:class:`WorkerDied`, never a hang — and the lane restarts with its
churn recorded in the blame table.  Marked ``serve``."""

from __future__ import annotations

import glob
import time

import pytest

from repro.serve import (
    ERROR_KIND_WORKER_DIED,
    ServePool,
    SessionSpec,
    WorkerDied,
    kill_worker_after,
    worker_died_result,
)

pytestmark = pytest.mark.serve

WAIT_S = 120.0

#: Heavy enough to still be in flight when the SIGKILL lands.
SLOW = dict(benchmark="FMRadio", iterations=8)


def _no_leaked_segments(pool: ServePool) -> bool:
    return not glob.glob(f"/dev/shm/mx{pool.uid}*")


class TestSupervisedRestart:
    def test_kill_mid_campaign_loses_no_sessions(self):
        with ServePool(2, max_queue_depth=8, wire_transport="shm",
                       shm_threshold=0) as pool:
            tickets = [pool.submit(SessionSpec(**SLOW, tag=f"s{i}"))
                       for i in range(8)]
            assert pool.kill_worker() >= 0
            results = [t.result(timeout=WAIT_S) for t in tickets]
            ok = [r for r in results if r.ok]
            died = [r for r in results if r.worker_died]
            assert len(ok) + len(died) == 8  # nothing lost, nothing hung
            # The kill landed while work was in flight, so the stranded
            # sessions either re-dispatched (retried results) or spent
            # their one retry.
            assert any(r.retried for r in results) or died
            stats = pool.stats_snapshot()
            assert sum(s["restarts"] for s in stats) >= 1
            assert sum(s["requeued"] for s in stats) == \
                sum(1 for r in ok if r.retried) + \
                sum(1 for r in died if r.retried)
            assert pool.drain(timeout=WAIT_S) is None
        assert len(pool.registry) == 0
        assert _no_leaked_segments(pool)

    def test_restarted_lane_serves_again(self):
        with ServePool(1, max_queue_depth=8) as pool:
            first = pool.submit(SessionSpec(**SLOW))
            pool.kill_worker()
            first.result(timeout=WAIT_S)  # retried or died; don't care
            deadline = time.monotonic() + WAIT_S
            while not pool._alive[0] and time.monotonic() < deadline:
                time.sleep(0.05)
            after = pool.run(SessionSpec(benchmark="DCT", iterations=1),
                             timeout=WAIT_S)
            assert after.ok, after.error
            assert pool.stats_snapshot()[0]["restarts"] == 1

    def test_at_most_once_redispatch(self):
        """With restarts disabled and a single lane, a stranded session
        has nowhere to go: it must resolve as a typed WorkerDied rather
        than retry forever (or hang)."""
        with ServePool(1, max_queue_depth=8, max_restarts=0) as pool:
            tickets = [pool.submit(SessionSpec(**SLOW)) for _ in range(3)]
            pool.kill_worker()
            results = [t.result(timeout=WAIT_S) for t in tickets]
            assert all(r.worker_died for r in results)
            assert all(isinstance(r, WorkerDied) for r in results)
            assert all(r.error_kind == ERROR_KIND_WORKER_DIED
                       for r in results)
            assert not any(r.ok for r in results)
            stats = pool.stats_snapshot()[0]
            assert stats["restarts"] == 0
            assert stats["worker_died"] == 3
            assert stats["queue_depth"] == 0  # slots released
            # All lanes dead: fault injection has nothing left to kill.
            assert pool.kill_worker() == -1

    def test_worker_died_results_name_the_failure(self):
        result = worker_died_result(7, 1, exitcode=-9, retried=True)
        assert result.worker_died and result.retried
        assert "worker 1 died" in result.error
        assert "-9" in result.error
        assert "re-dispatch" in result.error


class TestDrainUnderFailure:
    def test_drain_returns_after_sigkill_mid_drain(self):
        """Regression: drain() used to wait on the result queue alone, so
        a worker SIGKILLed mid-drain stranded its sessions forever."""
        with ServePool(2, max_queue_depth=8) as pool:
            tickets = [pool.submit(SessionSpec(**SLOW)) for _ in range(6)]
            killer = kill_worker_after(pool, 1)
            start = time.monotonic()
            pool.drain(timeout=WAIT_S)  # must return, not time out
            assert time.monotonic() - start < WAIT_S
            killer.join(timeout=5.0)
            for ticket in tickets:
                result = ticket.result(timeout=1.0)  # already resolved
                assert result.ok or result.worker_died

    def test_unsupervised_drain_converts_dead_lane_tickets(self):
        """The supervision-off fallback: drain() itself must turn a dead
        lane's in-flight tickets into WorkerDied instead of blocking."""
        with ServePool(1, max_queue_depth=8, supervise=False,
                       wire_transport="shm", shm_threshold=0) as pool:
            tickets = [pool.submit(SessionSpec(**SLOW)) for _ in range(3)]
            pool.kill_worker()
            pool.drain(timeout=WAIT_S)
            results = [t.result(timeout=1.0) for t in tickets]
            assert all(r.worker_died for r in results)
        assert len(pool.registry) == 0
        assert _no_leaked_segments(pool)


class TestFaultInjectionHelper:
    def test_kill_worker_after_fires_at_threshold(self):
        with ServePool(2, max_queue_depth=8) as pool:
            trigger = kill_worker_after(pool, 2)
            tickets = [pool.submit(SessionSpec(benchmark="DCT",
                                               iterations=1))
                       for _ in range(6)]
            results = [t.result(timeout=WAIT_S) for t in tickets]
            trigger.join(timeout=WAIT_S)
            assert not trigger.is_alive()
            assert all(r.ok or r.worker_died for r in results)
            assert sum(s["restarts"]
                       for s in pool.stats_snapshot()) >= 1

    def test_kill_worker_after_validates_count(self):
        from repro.serve import ServeError
        with pytest.raises(ServeError):
            kill_worker_after(object(), -1)
