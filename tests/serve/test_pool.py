"""The process-sharded pool: real spawn workers, admission control,
failure isolation, and graceful shutdown.  Marked ``serve`` — these
tests start worker processes."""

from __future__ import annotations

import pytest

from repro.serve import (
    ServeError,
    ServeOverload,
    ServePool,
    ServeTimeout,
    SessionSpec,
)

from .test_worker_env import direct_reference

pytestmark = pytest.mark.serve

#: Generous per-session wait: covers worker cold-start compile on slow CI.
WAIT_S = 120.0


@pytest.fixture(scope="module")
def pool():
    with ServePool(2, max_queue_depth=8) as pool:
        yield pool


class TestServing:
    def test_served_outputs_match_direct_execute(self, pool):
        spec = SessionSpec(benchmark="DCT", iterations=2)
        result = pool.run(spec, timeout=WAIT_S)
        assert result.ok, result.error
        ref = direct_reference(spec)
        assert result.outputs == list(ref.outputs)
        assert result.init_outputs == list(ref.init_outputs)

    def test_sessions_spread_across_workers(self, pool):
        tickets = [pool.submit(SessionSpec(benchmark="FFT", iterations=1,
                                           tag=f"s{i}"))
                   for i in range(4)]
        assert not any(isinstance(t, ServeOverload) for t in tickets)
        results = [t.result(timeout=WAIT_S) for t in tickets]
        assert all(r.ok for r in results)
        assert {t.worker for t in tickets} == {0, 1}  # round-robin
        for ticket, result in zip(tickets, results):
            assert result.worker == ticket.worker
            assert result.tag == ticket.spec.tag
            assert ticket.latency_s > 0.0

    def test_bad_session_does_not_kill_worker(self, pool):
        bad = pool.run(SessionSpec(benchmark="NoSuchApp"), timeout=WAIT_S)
        assert not bad.ok
        assert "NoSuchApp" in bad.error
        good = pool.run(SessionSpec(benchmark="DCT", iterations=1),
                        timeout=WAIT_S)
        assert good.ok, good.error

    def test_stats_charge_sessions_to_lanes(self, pool):
        pool.run(SessionSpec(benchmark="DCT", iterations=1),
                 timeout=WAIT_S)
        snapshot = pool.stats_snapshot()
        assert len(snapshot) == 2
        assert sum(s["submitted"] for s in snapshot) >= 1
        assert sum(s["completed"] for s in snapshot) == \
            sum(s["submitted"] for s in snapshot)  # all drained
        assert all(s["queue_depth"] == 0 for s in snapshot)
        busy = [s for s in snapshot if s["completed"]]
        assert all(s["busy_s"] > 0.0 for s in busy)
        assert all("lookups" in s["cache"] for s in busy)

    def test_ticket_timeout_raises(self, pool):
        ticket = pool.submit(SessionSpec(benchmark="FMRadio",
                                         iterations=4))
        with pytest.raises(ServeTimeout):
            ticket.result(timeout=0.0)
        ticket.result(timeout=WAIT_S)  # then let it finish


class TestVectorPool:
    def test_vector_pool_serves_interpreter_exact_sessions(self):
        """Serve-parity oracle through real spawn workers on the vector
        backend: the served outputs must match the in-process
        interpreter reference bit for bit."""
        pytest.importorskip("numpy")
        spec = SessionSpec(benchmark="FMRadio", backend="vector",
                           pipeline="full", iterations=2)
        with ServePool(1, backend="vector", max_queue_depth=4) as pool:
            result = pool.run(spec, timeout=WAIT_S)
        assert result.ok, result.error
        assert result.backend == "vector"
        ref = direct_reference(SessionSpec(
            benchmark="FMRadio", backend="interp", pipeline="full",
            iterations=2))
        assert result.outputs == list(ref.outputs)
        assert result.init_outputs == list(ref.init_outputs)


class TestAdmissionControl:
    def test_overload_is_returned_not_queued(self):
        with ServePool(1, max_queue_depth=1) as pool:
            slow = SessionSpec(benchmark="FMRadio", iterations=16)
            first = pool.submit(slow)
            assert not isinstance(first, ServeOverload)
            # Lane full (depth 1/1): the next submit is shed at the door.
            second = pool.submit(slow)
            assert isinstance(second, ServeOverload)
            assert second.limit == 1
            assert second.queue_depth == 1
            with pytest.raises(ServeError):
                pool.run(slow, timeout=WAIT_S)
            assert first.result(timeout=WAIT_S).ok
            snapshot = pool.stats_snapshot()
            assert snapshot[0]["rejected"] == 2

    def test_validation(self):
        with pytest.raises(ServeError):
            ServePool(0)
        with pytest.raises(ServeError):
            ServePool(1, max_queue_depth=0)


class TestShutdown:
    def test_shutdown_drains_and_merges_env_stats(self):
        pool = ServePool(2, max_queue_depth=4)
        tickets = [pool.submit(SessionSpec(benchmark="DCT", iterations=1))
                   for _ in range(3)]
        stats = pool.shutdown(timeout=WAIT_S)
        for ticket in tickets:
            assert ticket.result(timeout=0.1).ok
        assert len(stats) == 2
        # Worker-side lifetime stats arrived with MSG_BYE.
        assert sum(s["env"].get("sessions", 0) for s in stats) == 3
        # Idempotent.
        assert pool.shutdown() == stats

    def test_submit_after_shutdown_is_refused(self):
        pool = ServePool(1)
        pool.shutdown()
        with pytest.raises(ServeError):
            pool.submit(SessionSpec(benchmark="DCT"))


def _assert_fully_torn_down(pool: ServePool) -> None:
    """No worker process, no registered segment, no on-disk segment may
    outlive shutdown()."""
    import glob
    import multiprocessing as mp
    import time

    deadline = time.monotonic() + 10.0
    while any(p.is_alive() for p in pool._procs if p is not None) \
            and time.monotonic() < deadline:
        time.sleep(0.05)
    assert not any(p.is_alive() for p in pool._procs if p is not None)
    # active_children() may see *other* pools' workers (module fixtures);
    # only this pool's processes must be reaped.
    ours = {p.pid for p in pool._procs if p is not None}
    assert not [p for p in mp.active_children() if p.pid in ours]
    assert len(pool.registry) == 0, pool.registry.outstanding()
    assert glob.glob(f"/dev/shm/mx{pool.uid}*") == []


class TestShutdownIdempotency:
    """Satellite (d): double shutdown, shutdown-during-drain, and
    shutdown with a full request queue all tear down completely."""

    def test_double_shutdown_is_stable(self):
        pool = ServePool(2, wire_transport="shm", shm_threshold=0)
        pool.run(SessionSpec(benchmark="DCT", iterations=1),
                 timeout=WAIT_S)
        first = pool.shutdown(timeout=WAIT_S)
        second = pool.shutdown(timeout=WAIT_S)
        assert first == second
        _assert_fully_torn_down(pool)

    def test_shutdown_during_drain_from_another_thread(self):
        import threading

        pool = ServePool(2, max_queue_depth=8, wire_transport="shm",
                         shm_threshold=0)
        tickets = [pool.submit(SessionSpec(benchmark="FMRadio",
                                           iterations=4))
                   for _ in range(6)]
        drainer = threading.Thread(
            target=lambda: pool.shutdown(timeout=WAIT_S), daemon=True)
        drainer.start()
        # Racing second shutdown while the first is draining.
        pool.shutdown(timeout=WAIT_S)
        drainer.join(timeout=WAIT_S)
        assert not drainer.is_alive()
        for ticket in tickets:
            result = ticket.result(timeout=WAIT_S)
            assert result.ok or result.error is not None
        _assert_fully_torn_down(pool)

    def test_shutdown_with_full_request_queue(self):
        """Undrained shutdown with every admission slot occupied: queued
        specs must resolve (served or typed orphan), and teardown must
        not deadlock on the queue feeder threads."""
        pool = ServePool(1, max_queue_depth=8, wire_transport="shm",
                         shm_threshold=0)
        tickets = [pool.submit(SessionSpec(benchmark="FMRadio",
                                           iterations=8, tag=f"s{i}"))
                   for i in range(8)]
        assert not any(isinstance(t, ServeOverload) for t in tickets)
        pool.shutdown(drain=False, timeout=5.0)
        for ticket in tickets:
            result = ticket.result(timeout=WAIT_S)
            if not result.ok:
                assert result.error is not None
        _assert_fully_torn_down(pool)
