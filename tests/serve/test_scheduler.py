"""Placement policies and their registry."""

from __future__ import annotations

import pytest

from repro.serve import (
    LeastLoaded,
    PlacementPolicy,
    RoundRobin,
    ServeError,
    UnknownPolicyError,
    get_policy,
    list_policies,
    register_policy,
)
from repro.serve.scheduler import _POLICIES


class TestRoundRobin:
    def test_cycles_through_workers(self):
        policy = RoundRobin()
        picks = [policy.choose([0, 0, 0], limit=4) for _ in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_skips_saturated_workers(self):
        policy = RoundRobin()
        assert policy.choose([4, 0, 4], limit=4) == 1
        # The cursor advanced past the saturated worker it skipped.
        assert policy.choose([4, 0, 4], limit=4) == 1

    def test_declines_when_all_full(self):
        assert RoundRobin().choose([4, 4], limit=4) == -1


class TestLeastLoaded:
    def test_picks_minimum_depth(self):
        assert LeastLoaded().choose([3, 1, 2], limit=4) == 1

    def test_ties_break_to_lowest_index(self):
        assert LeastLoaded().choose([2, 1, 1], limit=4) == 1

    def test_declines_when_minimum_at_limit(self):
        assert LeastLoaded().choose([4, 4, 4], limit=4) == -1


class TestRegistry:
    def test_builtin_policies_registered(self):
        assert "round-robin" in list_policies()
        assert "least-loaded" in list_policies()

    def test_lookup_is_case_insensitive(self):
        assert isinstance(get_policy("Round-Robin"), RoundRobin)
        assert isinstance(get_policy("LEAST-LOADED"), LeastLoaded)

    def test_each_lookup_is_a_fresh_instance(self):
        # Policies may be stateful (round-robin cursor) — pools must not
        # share instances through the registry.
        assert get_policy("round-robin") is not get_policy("round-robin")

    def test_unknown_name_suggests_closest(self):
        with pytest.raises(UnknownPolicyError, match="round-robin"):
            get_policy("round-robbin")

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ServeError):
            register_policy("round-robin", RoundRobin)

    def test_custom_policy_registers_and_resolves(self):
        class Sticky(PlacementPolicy):
            name = "sticky-zero-test"

            def choose(self, depths, limit):
                return 0 if depths[0] < limit else -1

        register_policy(Sticky.name, Sticky)
        try:
            assert isinstance(get_policy("sticky-zero-test"), Sticky)
            assert get_policy("sticky-zero-test").choose([0, 0], 4) == 0
        finally:
            _POLICIES.pop("sticky-zero-test", None)
