"""The per-worker persistent environment: served sessions must match
direct execution, repeated sessions must recompile nothing, and both
caches must respect their residency bounds."""

from __future__ import annotations

import random

import pytest

from repro.fuzz import desc_to_dict, generate_program
from repro.graph.flatten import flatten
from repro.runtime import execute
from repro.schedule import build_schedule
from repro.serve import SessionSpec, WorkerEnv, counter_bags
from repro.simd import CORE_I7, compile_graph


def direct_reference(spec: SessionSpec, machine=CORE_I7):
    """What ``execute`` produces for ``spec`` without any serving layer."""
    from repro.apps import get_benchmark
    graph = flatten(get_benchmark(spec.benchmark))
    if spec.pipeline is not None:
        graph = compile_graph(graph, machine, pipeline=spec.pipeline).graph
    return execute(graph, build_schedule(graph), machine=machine,
                   iterations=spec.iterations, backend=spec.backend)


class TestParity:
    @pytest.mark.parametrize("pipeline", ["full", "scalar", None])
    def test_session_matches_direct_execute(self, pipeline):
        spec = SessionSpec(benchmark="DCT", pipeline=pipeline, iterations=2)
        env = WorkerEnv("compiled")
        result = env.run_session(spec)
        assert result.ok, result.error
        ref = direct_reference(spec)
        assert result.outputs == list(ref.outputs)
        assert result.init_outputs == list(ref.init_outputs)
        assert result.steady_bags == counter_bags(ref.steady_counters)
        assert result.init_bags == counter_bags(ref.init_counters)

    def test_interp_backend_serves_too(self):
        spec = SessionSpec(benchmark="FFT", backend="interp", iterations=2)
        env = WorkerEnv("interp")
        result = env.run_session(spec)
        assert result.ok, result.error
        ref = direct_reference(spec)
        assert result.outputs == list(ref.outputs)
        assert result.kernel_cache is None

    def test_fuzz_program_session(self):
        desc = generate_program(random.Random(0))
        spec = SessionSpec(program=desc_to_dict(desc), pipeline="full",
                           iterations=2)
        env = WorkerEnv("compiled")
        result = env.run_session(spec)
        assert result.ok, result.error
        assert result.graph_name


class TestVectorServing:
    """The vector backend serves through the same worker path: private
    per-worker backend, wire-preserved spec, parity with both direct
    vector execution and the interpreter reference."""

    def setup_method(self):
        pytest.importorskip("numpy")

    def test_vector_env_owns_a_private_vector_backend(self):
        from repro.runtime.vector import VectorBackend
        env_a, env_b = WorkerEnv("vector"), WorkerEnv("vector")
        assert isinstance(env_a.backend, VectorBackend)
        # Private per worker, not the resolve_backend singleton.
        assert env_a.backend is not env_b.backend
        from repro.runtime.backends import resolve_backend
        assert env_a.backend is not resolve_backend("vector")

    def test_backend_survives_the_wire(self):
        spec = SessionSpec(benchmark="FMRadio", backend="vector",
                           iterations=2)
        assert SessionSpec.from_wire(spec.to_wire()) == spec

    @pytest.mark.parametrize("app", ["FMRadio", "StreamTriad"])
    def test_vector_session_matches_direct_and_interp(self, app):
        spec = SessionSpec(benchmark=app, backend="vector",
                           pipeline="full", iterations=2)
        env = WorkerEnv("vector")
        result = env.run_session(spec)
        assert result.ok, result.error
        assert result.backend == "vector"
        ref = direct_reference(spec)
        assert result.outputs == list(ref.outputs)
        assert result.init_outputs == list(ref.init_outputs)
        assert result.steady_bags == counter_bags(ref.steady_counters)
        assert result.init_bags == counter_bags(ref.init_counters)
        # Served vector output is also interpreter-exact.
        interp = direct_reference(SessionSpec(
            benchmark=app, backend="interp", pipeline="full",
            iterations=2))
        assert result.outputs == list(interp.outputs)

    def test_vector_env_reuses_kernel_and_graph_caches(self):
        env = WorkerEnv("vector")
        spec = SessionSpec(benchmark="FFT", backend="vector", iterations=2)
        first = env.run_session(spec)
        second = env.run_session(spec)
        assert first.ok and second.ok
        assert not first.graph_cache_hit and second.graph_cache_hit
        assert dict(second.kernel_cache)["compiled"] == 0


class TestServicePacing:
    def test_paced_session_pays_modeled_cycles_in_wall_clock(self):
        env = WorkerEnv("compiled")
        rate = 1e-7
        spec = SessionSpec(benchmark="DCT", iterations=1,
                           seconds_per_cycle=rate)
        result = env.run_session(spec)
        assert result.ok, result.error
        ref = direct_reference(SessionSpec(benchmark="DCT", iterations=1))
        # Outputs are untouched by pacing; only service time stretches.
        assert result.outputs == list(ref.outputs)
        assert result.busy_s >= ref.steady_cycles(CORE_I7) * rate

    def test_negative_rate_rejected(self):
        from repro.serve import ServeError
        with pytest.raises(ServeError):
            SessionSpec(benchmark="DCT", seconds_per_cycle=-1.0)


class TestSessionErrors:
    def test_bad_benchmark_is_reported_not_raised(self):
        env = WorkerEnv("compiled")
        result = env.run_session(SessionSpec(benchmark="NoSuchApp"))
        assert not result.ok
        assert "NoSuchApp" in result.error
        assert env.stats.errors == 1
        # The environment survives: the next session still works.
        again = env.run_session(SessionSpec(benchmark="DCT", iterations=1))
        assert again.ok, again.error


class TestGraphCache:
    def test_repeat_sessions_hit_the_graph_cache(self):
        env = WorkerEnv("compiled")
        spec = SessionSpec(benchmark="DCT", iterations=2)
        first = env.run_session(spec)
        second = env.run_session(spec)
        assert not first.graph_cache_hit
        assert second.graph_cache_hit
        assert env.stats.graph_cache_hits == 1
        assert env.stats.graph_cache_misses == 1
        assert second.outputs == first.outputs

    def test_iterations_do_not_split_the_cache(self):
        env = WorkerEnv("compiled")
        env.run_session(SessionSpec(benchmark="DCT", iterations=1))
        result = env.run_session(SessionSpec(benchmark="DCT", iterations=3))
        assert result.graph_cache_hit

    def test_max_graphs_bounds_residency(self):
        env = WorkerEnv("compiled", max_graphs=2)
        for name in ("DCT", "FFT", "BitonicSort", "MatrixMult"):
            result = env.run_session(SessionSpec(benchmark=name,
                                                 iterations=1))
            assert result.ok, result.error
            assert env.graph_cache_size() <= 2
        # DCT was evicted (FIFO) — re-serving it is a miss, not a hit.
        result = env.run_session(SessionSpec(benchmark="DCT", iterations=1))
        assert not result.graph_cache_hit

    def test_max_graphs_validation(self):
        with pytest.raises(ValueError):
            WorkerEnv("compiled", max_graphs=0)


class TestKernelCacheReuse:
    """Satellite: cross-session kernel-cache reuse via structhash keys."""

    def _deltas(self, env: WorkerEnv, spec: SessionSpec, n: int):
        deltas = []
        for _ in range(n):
            result = env.run_session(spec)
            assert result.ok, result.error
            deltas.append(dict(result.kernel_cache))
        return deltas

    def test_repeat_sessions_recompile_nothing(self):
        env = WorkerEnv("compiled")
        spec = SessionSpec(benchmark="FFT", iterations=2)
        first, *rest = self._deltas(env, spec, 3)
        assert first["compiled"] > 0
        for delta in rest:
            assert delta["compiled"] == 0
            assert delta["evictions"] == 0
            assert delta["hits"] == delta["lookups"] > 0

    def test_hit_rate_is_deterministic_across_fresh_environments(self):
        """Two identical session streams against two fresh environments
        must show identical per-session cache deltas — the structhash
        key is content-addressed, not run-dependent."""
        specs = [SessionSpec(benchmark=name, iterations=2)
                 for name in ("DCT", "FFT", "DCT", "FFT", "DCT")]
        runs = []
        for _ in range(2):
            env = WorkerEnv("compiled")
            runs.append([dict(env.run_session(s).kernel_cache)
                         for s in specs])
        assert runs[0] == runs[1]
        # And the stream's shape is what persistence predicts: sessions
        # 3..5 (repeats) compile nothing.
        for delta in runs[0][2:]:
            assert delta["compiled"] == 0

    def test_max_kernels_evicts_under_many_distinct_shapes(self):
        env = WorkerEnv("compiled", max_kernels=3)
        for name in ("DCT", "FFT", "BitonicSort", "MatrixMult",
                     "MP3Decoder"):
            result = env.run_session(SessionSpec(benchmark=name,
                                                 iterations=1))
            assert result.ok, result.error
            assert len(env.backend.cache) <= 3
        stats = env.backend.cache.stats.snapshot()
        assert stats["evictions"] > 0
        # Correctness under eviction: a bounded cache still serves the
        # right answers (re-run an evicted shape and compare).
        spec = SessionSpec(benchmark="DCT", iterations=2)
        served = env.run_session(spec)
        ref = direct_reference(spec)
        assert served.outputs == list(ref.outputs)
