"""Session layer: spec validation, content-addressed graph keys, and the
explicit wire-format seam (``encode_result`` / ``decode_result``)."""

from __future__ import annotations

import pytest

from repro.serve import (
    ServeError,
    ServeOverload,
    SessionResult,
    SessionSpec,
    decode_result,
    encode_result,
)
from repro.serve.session import WIRE_VERSION


class TestSessionSpec:
    def test_needs_exactly_one_program_source(self):
        with pytest.raises(ServeError):
            SessionSpec()
        with pytest.raises(ServeError):
            SessionSpec(benchmark="DCT", program={"filters": []})

    def test_rejects_bad_iterations_and_cores(self):
        with pytest.raises(ServeError):
            SessionSpec(benchmark="DCT", iterations=0)
        with pytest.raises(ServeError):
            SessionSpec(benchmark="DCT", cores=0)

    def test_wire_round_trip(self):
        spec = SessionSpec(benchmark="FFT", pipeline="scalar",
                           iterations=3, tag="t7")
        assert SessionSpec.from_wire(spec.to_wire()) == spec

    def test_graph_key_shares_compiled_shape(self):
        a = SessionSpec(benchmark="DCT", iterations=2)
        b = SessionSpec(benchmark="DCT", iterations=9, tag="other")
        # iterations/tag are per-session, not per-graph.
        assert a.graph_key() == b.graph_key()

    def test_graph_key_separates_pipeline_machine_program(self):
        base = SessionSpec(benchmark="DCT")
        keys = {
            base.graph_key(),
            SessionSpec(benchmark="FFT").graph_key(),
            SessionSpec(benchmark="DCT", pipeline="scalar").graph_key(),
            SessionSpec(benchmark="DCT", pipeline=None).graph_key(),
            SessionSpec(benchmark="DCT",
                        machine="other-target").graph_key(),
        }
        assert len(keys) == 5

    def test_graph_key_ignores_program_dict_ordering(self):
        p1 = {"name": "p", "filters": [1, 2]}
        p2 = {"filters": [1, 2], "name": "p"}
        k1 = SessionSpec(program=p1).graph_key()
        k2 = SessionSpec(program=p2).graph_key()
        assert k1 == k2


class TestWireFormat:
    def _result(self) -> SessionResult:
        return SessionResult(
            seq=5, worker=1, tag="x", graph_name="g", backend="compiled",
            iterations=2, outputs=[1.0, 2.0], init_outputs=[0.5],
            steady_bags={3: {"fire": 4, "push": 8}},
            init_bags={3: {"fire": 1}},
            kernel_cache={"lookups": 2, "hits": 1},
            graph_cache_hit=True, busy_s=0.01)

    def test_encode_decode_round_trip(self):
        result = self._result()
        decoded = decode_result(encode_result(result))
        assert decoded == result
        # int actor ids survive the str-keyed wire form.
        assert all(isinstance(k, int) for k in decoded.steady_bags)

    def test_wire_uses_only_builtins(self):
        import json
        # The wire dict must be JSON-serializable: plain builtins only.
        json.dumps(encode_result(self._result()))

    def test_version_mismatch_fails_loudly(self):
        wire = encode_result(self._result())
        wire["v"] = WIRE_VERSION + 1
        with pytest.raises(ServeError):
            decode_result(wire)
        wire.pop("v")
        with pytest.raises(ServeError):
            decode_result(wire)

    def test_error_result_is_not_ok(self):
        result = SessionResult(seq=1, error="KeyError: nope")
        assert not result.ok
        assert not decode_result(encode_result(result)).ok


def test_overload_is_data_not_exception():
    overload = ServeOverload(worker=-1, queue_depth=8, limit=8)
    assert not isinstance(overload, Exception)
    assert "8/8" in str(overload)
    assert "all workers" in str(overload)
    assert "worker 2" in str(ServeOverload(worker=2, queue_depth=3,
                                           limit=4))
