"""Load generator: percentile math (pure) and the two canonical loop
shapes against a real pool (marked ``serve``)."""

from __future__ import annotations

import pytest

from repro.serve import (
    LoadReport,
    RequestRecord,
    ServeError,
    ServePool,
    SessionSpec,
    percentile,
    run_closed_loop,
    run_open_loop,
)


class TestPercentile:
    def test_nearest_rank(self):
        values = [10.0, 20.0, 30.0, 40.0]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 75) == 30.0
        assert percentile(values, 99) == 40.0
        assert percentile(values, 0) == 10.0
        assert percentile(values, 100) == 40.0

    def test_single_sample(self):
        assert percentile([7.0], 50) == 7.0
        assert percentile([7.0], 99) == 7.0

    def test_order_independent(self):
        assert percentile([3.0, 1.0, 2.0], 50) == 2.0

    def test_rejects_empty_and_bad_q(self):
        with pytest.raises(ServeError):
            percentile([], 50)
        with pytest.raises(ServeError):
            percentile([1.0], 101)
        with pytest.raises(ServeError):
            percentile([1.0], -1)

    def test_float_rank_regression(self):
        """Regression: ``ceil(q / 100 * n)`` overshoots whenever the
        float product lands epsilon above the exact integer — q=7 over
        100 samples picked rank 8 instead of 7.  The rank is computed in
        rational arithmetic now."""
        values = [float(i) for i in range(1, 101)]  # value == its rank
        assert percentile(values, 7) == 7.0
        assert percentile(values, 29) == 29.0
        assert percentile([float(i) for i in range(1, 26)], 28) == 7.0

    def test_exact_rank_against_rational_reference(self):
        from fractions import Fraction
        from math import ceil

        for n in (1, 2, 3, 7, 25, 100, 997):
            values = [float(v) for v in range(n)]
            for q in (0, 1, 7, 28, 29, 50, 75, 90, 99, 99.9, 100):
                rank = min(n, max(1, ceil(Fraction(q) * n / 100)))
                assert percentile(values, q) == values[rank - 1], (n, q)

    def test_properties_hold_on_random_samples(self):
        hypothesis = pytest.importorskip("hypothesis")
        st = pytest.importorskip("hypothesis.strategies")

        @hypothesis.given(
            st.lists(st.floats(allow_nan=False, allow_infinity=False),
                     min_size=1, max_size=50),
            st.floats(min_value=0.0, max_value=100.0))
        @hypothesis.settings(max_examples=200, deadline=None)
        def check(values, q):
            result = percentile(values, q)
            assert result in values          # nearest rank, never interp
            assert min(values) <= result <= max(values)
            assert percentile(values, 100) == max(values)
            if len(values) == 1:
                assert result == values[0]   # pinned 1-element semantics
            # Monotone in q.
            assert percentile(values, min(q + 1, 100.0)) >= result

        check()


class TestReport:
    def _report(self) -> LoadReport:
        report = LoadReport(mode="closed", workers=1, requested=2,
                            completed=2, duration_s=0.5)
        report.records = [
            RequestRecord(index=0, spec_tag="a", ok=True, latency_s=0.010),
            RequestRecord(index=1, spec_tag="b", ok=True, latency_s=0.030),
        ]
        return report

    def test_throughput_and_latency(self):
        report = self._report()
        assert report.throughput_rps == pytest.approx(4.0)
        assert report.latency_ms(50) == pytest.approx(10.0)
        assert report.latency_ms(99) == pytest.approx(30.0)

    def test_to_dict_schema(self):
        payload = self._report().to_dict()
        for key in ("mode", "workers", "requested", "completed",
                    "overloads", "shed", "errors", "duration_s",
                    "throughput_rps", "p50_ms", "p99_ms", "mean_ms"):
            assert key in payload

    def test_empty_latencies_are_null_not_crash(self):
        payload = LoadReport(mode="open", workers=1,
                             requested=0).to_dict()
        assert payload["p50_ms"] is None and payload["p99_ms"] is None

    def test_input_validation(self):
        pool_unused = None
        with pytest.raises(ServeError):
            run_closed_loop(pool_unused, [], concurrency=1, requests=1)
        with pytest.raises(ServeError):
            run_open_loop(pool_unused, [], rate=1.0, requests=1)
        spec = SessionSpec(benchmark="DCT")
        with pytest.raises(ServeError):
            run_closed_loop(pool_unused, [spec], concurrency=0, requests=1)
        with pytest.raises(ServeError):
            run_open_loop(pool_unused, [spec], rate=0.0, requests=1)


@pytest.mark.serve
class TestAgainstRealPool:
    @pytest.fixture(scope="class")
    def pool(self):
        with ServePool(2, policy="least-loaded", max_queue_depth=4) as pool:
            yield pool

    def test_closed_loop(self, pool):
        specs = [SessionSpec(benchmark="DCT", iterations=1),
                 SessionSpec(benchmark="FFT", iterations=1)]
        report = run_closed_loop(pool, specs, concurrency=2, requests=6)
        assert report.mode == "closed"
        assert report.completed == 6
        assert report.errors == 0
        assert len(report.latencies_s()) == 6
        assert all(lat > 0.0 for lat in report.latencies_s())
        assert report.latency_ms(99) >= report.latency_ms(50)
        assert report.throughput_rps > 0.0
        # Records arrive sorted by request index with worker attribution.
        assert [r.index for r in report.records] == list(range(6))
        assert all(r.worker >= 0 for r in report.records)

    def test_open_loop(self, pool):
        specs = [SessionSpec(benchmark="DCT", iterations=1)]
        report = run_open_loop(pool, specs, rate=50.0, requests=5)
        assert report.mode == "open"
        assert report.completed + report.shed == 5
        assert report.errors == 0
        # Paced arrivals: the run cannot finish faster than the last
        # intended arrival (4/50 s in).
        assert report.duration_s >= 4 / 50.0

    def test_closed_loop_errors_are_counted(self, pool):
        specs = [SessionSpec(benchmark="NoSuchApp")]
        report = run_closed_loop(pool, specs, concurrency=1, requests=2)
        assert report.completed == 0
        assert report.errors == 2
