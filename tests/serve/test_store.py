"""The on-disk kernel store: hit/miss/publish round trips, atomicity
conventions, version stamps, and corrupt-entry quarantine — plus the
WorkerEnv integration (a second environment warms from the first's
publishes).  All in-process."""

from __future__ import annotations

import pickle

import pytest

from repro.serve import (
    STORE_ENV_VAR,
    STORE_VERSION,
    KernelStore,
    SessionSpec,
    WorkerEnv,
    default_store_dir,
)


@pytest.fixture()
def store(tmp_path):
    return KernelStore(tmp_path / "store")


class TestStoreRoundTrip:
    def test_miss_then_publish_then_hit(self, store):
        assert store.load("k1") is None
        assert store.stats.misses == 1
        assert store.store("k1", {"graph": True}, [1, 2, 3])
        assert store.stats.stores == 1
        assert store.load("k1") == ({"graph": True}, [1, 2, 3])
        assert store.stats.hits == 1
        assert store.entries() == 1

    def test_keys_are_isolated(self, store):
        store.store("a", "ga", "sa")
        store.store("b", "gb", "sb")
        assert store.load("a") == ("ga", "sa")
        assert store.load("b") == ("gb", "sb")
        assert store.entries() == 2

    def test_last_writer_wins(self, store):
        store.store("k", "old-graph", "old-schedule")
        store.store("k", "new-graph", "new-schedule")
        assert store.load("k") == ("new-graph", "new-schedule")
        assert store.entries() == 1

    def test_no_temp_files_left_behind(self, store):
        store.store("k", "g", "s")
        leftovers = [p.name for p in store.root.iterdir()
                     if p.name.startswith(".tmp-")]
        assert leftovers == []

    def test_default_dir_comes_from_env(self, monkeypatch, tmp_path):
        monkeypatch.delenv(STORE_ENV_VAR, raising=False)
        assert default_store_dir() is None
        monkeypatch.setenv(STORE_ENV_VAR, str(tmp_path / "s"))
        assert default_store_dir() == tmp_path / "s"


class TestQuarantine:
    def test_truncated_entry_is_quarantined_not_fatal(self, store):
        store.store("k", "g", "s")
        path = store.entry_path("k")
        path.write_bytes(path.read_bytes()[:10])  # torn write simulation
        assert store.load("k") is None  # a miss, never an exception
        assert store.stats.quarantined == 1
        assert store.quarantined_entries() == 1
        assert store.entries() == 0  # the poison is out of the way
        # The slot is reusable immediately.
        store.store("k", "g2", "s2")
        assert store.load("k") == ("g2", "s2")

    def test_garbage_bytes_are_quarantined(self, store):
        store.entry_path("k").write_bytes(b"not a pickle at all")
        assert store.load("k") is None
        assert store.stats.quarantined == 1

    def test_version_skew_is_a_miss(self, store):
        payload = {"v": STORE_VERSION + 1, "key": "k",
                   "graph": "g", "schedule": "s"}
        store.entry_path("k").write_bytes(pickle.dumps(payload))
        assert store.load("k") is None
        assert store.stats.quarantined == 1

    def test_key_mismatch_is_a_miss(self, store):
        # A (vanishingly unlikely) digest collision or a tampered entry:
        # the echoed key inside the payload catches it.
        payload = {"v": STORE_VERSION, "key": "other",
                   "graph": "g", "schedule": "s"}
        store.entry_path("k").write_bytes(pickle.dumps(payload))
        assert store.load("k") is None
        assert store.stats.quarantined == 1

    def test_unpicklable_artifact_fails_soft(self, store):
        assert store.store("k", lambda: None, "s") is False  # closures
        assert store.stats.errors == 1
        assert store.entries() == 0


class TestWorkerEnvIntegration:
    SPEC = dict(benchmark="DCT", pipeline="full", machine="core-i7",
                backend="compiled", iterations=1)

    def test_cold_compile_publishes_and_sibling_warms(self, tmp_path):
        store = KernelStore(tmp_path)
        cold = WorkerEnv("compiled", store=store)
        r1 = cold.run_session(SessionSpec(**self.SPEC))
        assert r1.ok, r1.error
        assert store.stats.misses == 1 and store.stats.stores == 1
        assert store.entries() == 1

        warm = WorkerEnv("compiled", store=KernelStore(tmp_path))
        r2 = warm.run_session(SessionSpec(**self.SPEC))
        assert r2.ok, r2.error
        assert warm.store.stats.hits == 1
        assert warm.store.stats.stores == 0  # hits are not republished
        assert r2.outputs == r1.outputs
        assert r2.init_outputs == r1.init_outputs

    def test_store_counters_surface_in_env_stats(self, tmp_path):
        env = WorkerEnv("compiled", store=KernelStore(tmp_path))
        env.run_session(SessionSpec(**self.SPEC))
        snapshot = env.stats.snapshot()
        assert snapshot["store"]["misses"] == 1
        assert snapshot["store"]["stores"] == 1

    def test_env_accepts_a_plain_path(self, tmp_path):
        env = WorkerEnv("compiled", store=str(tmp_path))
        assert isinstance(env.store, KernelStore)
        r = env.run_session(SessionSpec(**self.SPEC))
        assert r.ok, r.error
        assert env.store.entries() == 1

    def test_quarantined_store_entry_degrades_to_cold_compile(self,
                                                              tmp_path):
        store = KernelStore(tmp_path)
        cold = WorkerEnv("compiled", store=store)
        ref = cold.run_session(SessionSpec(**self.SPEC))
        key = SessionSpec(**self.SPEC).graph_key()
        store.entry_path(key).write_bytes(b"poison")

        env = WorkerEnv("compiled", store=KernelStore(tmp_path))
        result = env.run_session(SessionSpec(**self.SPEC))
        assert result.ok, result.error  # corruption never fails a session
        assert env.store.stats.quarantined == 1
        assert result.outputs == ref.outputs

    def test_no_store_means_no_counters(self):
        env = WorkerEnv("compiled")
        env.run_session(SessionSpec(**self.SPEC))
        assert env.stats.snapshot()["store"] == {}
