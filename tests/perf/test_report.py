"""Coverage for the report formatting paths: ``CompilationReport.summary``
and the ``perf/report.py`` table formatters (previously untested),
including empty-counter and single-actor edge cases."""

from __future__ import annotations

import pytest

from repro.experiments.harness import scalar_graph
from repro.obs import hottest_actors_table, kernel_cache_summary
from repro.perf import (
    PerActorCounters,
    PerfCounters,
    classify_cycles,
    event_class_table,
    profile_table,
)
from repro.runtime import execute
from repro.simd import CORE_I7, CompilationReport, MacroSSOptions, \
    compile_graph

from ..conftest import linear_program, make_ramp_source, make_scaler


# -- CompilationReport.summary ------------------------------------------------

class TestCompilationReportSummary:
    def test_empty_report_has_header_and_scaling_only(self):
        report = CompilationReport(machine="core-i7",
                                   options=MacroSSOptions())
        summary = report.summary()
        lines = summary.splitlines()
        assert lines[0] == "MacroSS report (core-i7):"
        assert lines[1] == "  Equation (1) scaling factor M = 1"
        assert len(lines) == 2

    def test_decisions_sorted_and_rendered(self):
        report = CompilationReport(machine="m", options=MacroSSOptions())
        report.decisions = {"b": "single", "a": "vertical:fused_a"}
        report.tape_strategies = {"x->y": "permute(stride 4)"}
        report.scaling_factor = 4
        summary = report.summary()
        assert "M = 4" in summary
        a_pos = summary.index("a: vertical:fused_a")
        b_pos = summary.index("b: single")
        assert a_pos < b_pos  # sorted by actor name
        assert "tape x->y: permute(stride 4)" in summary

    def test_real_compile_summary_covers_all_actors(self):
        compiled = compile_graph(scalar_graph("RunningExample"), CORE_I7)
        summary = compiled.report.summary()
        for name in compiled.report.decisions:
            assert name in summary
        assert "Equation (1) scaling factor" in summary


# -- classify_cycles ----------------------------------------------------------

class TestClassifyCycles:
    def test_empty_counters_all_zero(self):
        buckets = classify_cycles(PerfCounters(), CORE_I7)
        assert set(buckets) >= {"scalar-alu", "vector-alu", "memory",
                                "pack/unpack", "math", "overhead"}
        assert all(v == 0.0 for v in buckets.values())

    def test_math_events_bucketed(self):
        counters = PerfCounters({"m_sin": 2, "vm_cos": 1, "s_alu": 3})
        buckets = classify_cycles(counters, CORE_I7)
        assert buckets["math"] > 0
        assert buckets["scalar-alu"] == 3 * CORE_I7.price("s_alu")

    def test_unknown_event_lands_in_overhead(self):
        counters = PerfCounters({"fire": 5})
        buckets = classify_cycles(counters, CORE_I7)
        assert buckets["overhead"] == 5 * CORE_I7.price("fire")


# -- profile_table / event_class_table ---------------------------------------

class TestProfileTable:
    def test_empty_counters_renders_total_row_only(self):
        graph = linear_program(make_ramp_source(), make_scaler(pop=4))
        table = profile_table(graph, PerActorCounters(), CORE_I7)
        lines = table.splitlines()
        assert "actor" in lines[0] and "dominant class" in lines[0]
        assert lines[-1].startswith("TOTAL")
        assert len(lines) == 3  # header, rule, TOTAL

    def test_single_actor_row_is_100_percent(self):
        graph = linear_program(make_ramp_source(), make_scaler(pop=4))
        actor_id = next(iter(graph.actors))
        counters = PerActorCounters()
        counters.for_actor(actor_id).add("s_alu", 10)
        table = profile_table(graph, counters, CORE_I7)
        row = [l for l in table.splitlines()
               if l.startswith(graph.actors[actor_id].name)][0]
        assert "100.0%" in row
        assert "scalar-alu" in row

    def test_top_truncates_ranking(self):
        graph = scalar_graph("FMRadio")
        result = execute(graph, machine=CORE_I7, iterations=1)
        full = profile_table(graph, result.steady_counters, CORE_I7)
        top2 = profile_table(graph, result.steady_counters, CORE_I7, top=2)
        assert len(top2.splitlines()) == 2 + 2 + 1  # hdr+rule+2 rows+TOTAL
        assert len(full.splitlines()) > len(top2.splitlines())
        # TOTAL reflects the whole set even when truncated (column widths
        # differ between the two tables, so compare tokens).
        assert full.splitlines()[-1].split() == top2.splitlines()[-1].split()

    def test_heaviest_actor_first(self):
        graph = scalar_graph("DCT")
        result = execute(graph, machine=CORE_I7, iterations=1)
        table = profile_table(graph, result.steady_counters, CORE_I7)
        cycles = result.steady_counters.cycles_by_actor(CORE_I7)
        heaviest = graph.actors[
            max(cycles, key=lambda aid: cycles[aid])].name
        assert table.splitlines()[2].startswith(heaviest)


class TestEventClassTable:
    def test_empty_counters_renders_header_only(self):
        table = event_class_table(PerfCounters(), CORE_I7)
        lines = table.splitlines()
        assert lines[0].startswith("event class")
        assert len(lines) == 2  # header + rule, no rows

    def test_zero_buckets_suppressed(self):
        counters = PerfCounters({"s_alu": 4})
        table = event_class_table(counters, CORE_I7)
        assert "scalar-alu" in table
        assert "vector-alu" not in table
        assert "100.0%" in table


# -- obs report helpers -------------------------------------------------------

class TestHottestActorsTable:
    def test_firings_and_share_columns(self):
        graph = scalar_graph("DCT")
        result = execute(graph, machine=CORE_I7, iterations=2)
        table = hottest_actors_table(graph, result, CORE_I7, top=3)
        lines = table.splitlines()
        assert lines[0].split() == ["actor", "firings", "cycles", "share",
                                    "dominant", "class"]
        assert len(lines) == 2 + 3
        firings = result.firings_by_actor()
        assert any(str(max(firings.values())) in line for line in lines[2:])

    def test_single_actor_graph(self):
        graph = linear_program(make_ramp_source(), make_scaler(pop=4))
        result = execute(graph, machine=CORE_I7, iterations=1)
        table = hottest_actors_table(graph, result, CORE_I7, top=10)
        body = table.splitlines()[2:]
        assert len(body) == len(graph.actors)
        assert "100.0%" in table or "%" in table


class TestKernelCacheSummary:
    def test_none_for_interp(self):
        assert "n/a" in kernel_cache_summary(None)
        assert "n/a" in kernel_cache_summary({})

    def test_formats_all_counters(self):
        line = kernel_cache_summary({"lookups": 10, "hits": 7, "misses": 3,
                                     "compiled": 3, "evictions": 1,
                                     "size": 2})
        assert line == ("kernel cache: 10 lookups, 7 hits, 3 misses "
                        "(3 compiled), 1 evicted, 2 resident")

    def test_execute_populates_kernel_cache_field(self):
        graph = linear_program(make_ramp_source(), make_scaler(pop=4))
        interp = execute(graph, machine=CORE_I7, iterations=1,
                         backend="interp")
        assert interp.kernel_cache is None
        from repro.runtime.compiled import CompiledBackend
        compiled = execute(graph, machine=CORE_I7, iterations=1,
                           backend=CompiledBackend())
        assert compiled.kernel_cache is not None
        assert compiled.kernel_cache["lookups"] > 0
        assert compiled.kernel_cache["size"] == \
            compiled.kernel_cache["compiled"]
        assert compiled.kernel_cache["evictions"] == 0
