"""Tests for performance counters and reports."""

import pytest

from repro.perf import (
    PerActorCounters,
    PerfCounters,
    classify_cycles,
    event_class_table,
    profile_table,
)
from repro.simd.machine import CORE_I7


class TestPerfCounters:
    def test_add_and_lookup(self):
        c = PerfCounters()
        c.add("s_alu")
        c.add("s_alu", 4)
        assert c["s_alu"] == 5
        assert c["missing"] == 0

    def test_merge(self):
        a = PerfCounters({"s_alu": 2})
        b = PerfCounters({"s_alu": 3, "v_mul": 1})
        a.merge(b)
        assert a["s_alu"] == 5
        assert a["v_mul"] == 1

    def test_cycles_pricing(self):
        c = PerfCounters({"s_alu": 10, "s_div": 2})
        expected = 10 * CORE_I7.price("s_alu") + 2 * CORE_I7.price("s_div")
        assert c.cycles(CORE_I7) == expected

    def test_bool(self):
        assert not PerfCounters()
        assert PerfCounters({"s_alu": 1})

    def test_scaled(self):
        c = PerfCounters({"s_alu": 10})
        assert c.scaled(0.5)["s_alu"] == 5

    def test_scaled_rounds_instead_of_truncating(self):
        # 3 * 0.5 = 1.5 must round to 2; int() used to truncate it to 1,
        # systematically under-counting rescaled event bags.
        c = PerfCounters({"s_alu": 3, "v_mul": 7})
        scaled = c.scaled(0.5)
        assert scaled["s_alu"] == 2
        assert scaled["v_mul"] == 4  # 3.5 rounds half-to-even -> 4

    def test_scaled_upscaling_is_exact_for_integers(self):
        c = PerfCounters({"s_alu": 3})
        assert c.scaled(4)["s_alu"] == 12


class TestPerActorCounters:
    def test_for_actor_creates_lazily(self):
        pac = PerActorCounters()
        pac.for_actor(3).add("s_alu", 7)
        assert pac.by_actor[3]["s_alu"] == 7

    def test_total_merges(self):
        pac = PerActorCounters()
        pac.for_actor(0).add("s_alu", 1)
        pac.for_actor(1).add("s_alu", 2)
        assert pac.total()["s_alu"] == 3

    def test_cycles_by_actor(self):
        pac = PerActorCounters()
        pac.for_actor(0).add("s_alu", 4)
        assert pac.cycles_by_actor(CORE_I7) == {0: 4.0}


class TestReports:
    def test_classify_covers_all_events(self):
        c = PerfCounters({"s_alu": 1, "v_mul": 1, "pack": 1, "m_sin": 1,
                          "addr": 1, "fire": 1, "s_load": 1})
        buckets = classify_cycles(c, CORE_I7)
        assert buckets["scalar-alu"] == 1.0
        assert buckets["math"] == CORE_I7.price("m_sin")
        assert buckets["pack/unpack"] == CORE_I7.price("pack")
        assert sum(buckets.values()) == pytest.approx(c.cycles(CORE_I7))

    def test_profile_table(self):
        from tests.conftest import linear_program, make_ramp_source, make_scaler
        from repro.runtime import execute
        g = linear_program(make_ramp_source(4), make_scaler())
        result = execute(g, iterations=1)
        table = profile_table(g, result.steady_counters, CORE_I7)
        assert "src" in table and "scale" in table and "TOTAL" in table

    def test_event_class_table(self):
        c = PerfCounters({"s_alu": 10, "v_load": 2})
        table = event_class_table(c, CORE_I7)
        assert "scalar-alu" in table
        assert "memory" in table
