"""CLI coverage for the observability surface: ``macross trace``, the
``--trace FILE`` flags, and kernel-cache statistics on ``run``/``profile``.

Exit-code tests pin the contract CI relies on; snapshot-style assertions
pin the table headers and the cache-stats line format.
"""

from __future__ import annotations

import json

import pytest

from repro.cli import main
from repro.obs import read_jsonl
from repro.simd import PASS_NAMES


class TestTraceCommand:
    def test_exit_code_and_pass_table(self, capsys):
        assert main(["trace", "FMRadio"]) == 0
        out = capsys.readouterr().out
        assert "Algorithm-1 passes:" in out
        for pass_name in PASS_NAMES:
            assert pass_name in out
        assert "hottest actors" in out
        # Default backend is compiled => cache stats are reported.
        assert "kernel cache:" in out
        assert "lookups" in out

    def test_table_headers_snapshot(self, capsys):
        assert main(["trace", "DCT", "--top", "3"]) == 0
        out = capsys.readouterr().out
        assert "pass" in out and "ms" in out and "actors" in out \
            and "tapes" in out and "detail" in out
        assert "firings" in out and "share" in out \
            and "dominant class" in out

    def test_interp_backend_has_no_cache_stats(self, capsys):
        assert main(["trace", "DCT", "--backend", "interp"]) == 0
        out = capsys.readouterr().out
        assert "kernel cache:" not in out
        assert "[interp backend" in out

    def test_sagu_variant(self, capsys):
        assert main(["trace", "MatrixMult", "--sagu"]) == 0
        assert "sagu" in capsys.readouterr().out

    def test_trace_file_covers_compile_and_runtime(self, tmp_path, capsys):
        path = tmp_path / "out.json"
        assert main(["trace", "FMRadio", "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert f"written to {path}" in out
        doc = json.loads(path.read_text())
        names = [e["name"] for e in doc["traceEvents"]]
        for pass_name in PASS_NAMES:
            assert pass_name in names
        assert "execute" in names and "runtime.steady" in names

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["trace", "NotABench"])


class TestTraceFlags:
    def test_compile_trace_flag(self, tmp_path, capsys):
        path = tmp_path / "compile.json"
        assert main(["compile", "DCT", "--trace", str(path)]) == 0
        assert path.exists()
        doc = json.loads(path.read_text())
        names = [e["name"] for e in doc["traceEvents"]]
        assert "compile_graph" in names
        assert "execute" not in names  # compile does not run the graph

    def test_run_trace_flag_jsonl(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        assert main(["run", "DCT", "--iterations", "1",
                     "--trace", str(path)]) == 0
        events = read_jsonl(path)
        names = [e.name for e in events]
        # scalar execute + compile + SIMD execute all in one capture
        assert names.count("execute") == 2
        assert "compile_graph" in names

    def test_fuzz_trace_flag(self, tmp_path, capsys):
        path = tmp_path / "fuzz.json"
        assert main(["fuzz", "--seed", "0", "--budget", "2",
                     "--trace", str(path)]) == 0
        doc = json.loads(path.read_text())
        names = [e["name"] for e in doc["traceEvents"]]
        assert "fuzz.campaign" in names
        assert any(n.startswith("fuzz.program[") for n in names)

    def test_no_trace_flag_writes_nothing(self, tmp_path, capsys):
        assert main(["compile", "DCT"]) == 0
        assert "written to" not in capsys.readouterr().out
        assert list(tmp_path.iterdir()) == []


class TestKernelCacheReporting:
    def test_run_compiled_reports_cache_stats(self, capsys):
        assert main(["run", "DCT", "--iterations", "1",
                     "--backend", "compiled"]) == 0
        out = capsys.readouterr().out
        assert "kernel cache:" in out
        assert "compiled)" in out and "resident" in out

    def test_run_interp_omits_cache_stats(self, capsys):
        assert main(["run", "DCT", "--iterations", "1"]) == 0
        assert "kernel cache:" not in capsys.readouterr().out

    def test_profile_compiled_reports_cache_stats(self, capsys):
        assert main(["profile", "DCT", "--backend", "compiled"]) == 0
        out = capsys.readouterr().out
        assert out.count("kernel cache:") == 2  # scalar and MacroSS runs
        assert "TOTAL" in out

    def test_profile_interp_omits_cache_stats(self, capsys):
        assert main(["profile", "DCT"]) == 0
        assert "kernel cache:" not in capsys.readouterr().out
