"""Tests for the IR type system."""

import pytest

from repro.ir.types import (
    BOOL,
    FLOAT,
    INT,
    Scalar,
    ScalarKind,
    Vector,
    element_type,
    is_vector,
    vector_of,
)


class TestScalar:
    def test_singletons_are_distinct(self):
        assert INT != FLOAT != BOOL

    def test_scalar_equality_by_kind(self):
        assert Scalar(ScalarKind.INT) == INT

    def test_str(self):
        assert str(FLOAT) == "float"
        assert str(INT) == "int"

    def test_is_numeric(self):
        assert INT.is_numeric and FLOAT.is_numeric
        assert not BOOL.is_numeric

    def test_hashable(self):
        assert len({INT, FLOAT, BOOL, Scalar(ScalarKind.INT)}) == 3


class TestVector:
    def test_construction(self):
        v = vector_of(FLOAT, 4)
        assert v.elem == FLOAT
        assert v.width == 4

    def test_str(self):
        assert str(Vector(FLOAT, 4)) == "vector<float, 4>"

    def test_width_must_be_at_least_two(self):
        with pytest.raises(ValueError):
            Vector(FLOAT, 1)

    def test_equality(self):
        assert Vector(FLOAT, 4) == Vector(FLOAT, 4)
        assert Vector(FLOAT, 4) != Vector(FLOAT, 8)
        assert Vector(FLOAT, 4) != Vector(INT, 4)


class TestHelpers:
    def test_element_type_of_scalar(self):
        assert element_type(FLOAT) is FLOAT

    def test_element_type_of_vector(self):
        assert element_type(Vector(INT, 4)) == INT

    def test_is_vector(self):
        assert is_vector(Vector(FLOAT, 4))
        assert not is_vector(FLOAT)
