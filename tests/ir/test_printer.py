"""Tests for the IR pretty printer (pins the paper's pseudo-code look)."""

from repro.ir import FLOAT, WorkBuilder, call, format_body, format_expr
from repro.ir import expr as E
from repro.ir import stmt as S
from repro.ir.lvalue import LaneLV


class TestExpressions:
    def test_constants(self):
        assert format_expr(E.IntConst(3)) == "3"
        assert format_expr(E.BoolConst(True)) == "true"

    def test_lane_syntax_matches_figure_3(self):
        assert format_expr(E.Lane(E.Var("t_v"), 3)) == "t_v.{3}"

    def test_precedence_parenthesises_only_when_needed(self):
        a, b, c = E.Var("a"), E.Var("b"), E.Var("c")
        assert format_expr(a + b * c) == "a + b * c"
        assert format_expr((a + b) * c) == "(a + b) * c"

    def test_tape_ops(self):
        assert format_expr(E.Pop()) == "pop()"
        assert format_expr(E.Peek(E.IntConst(6))) == "peek(6)"
        assert format_expr(E.VPop()) == "vpop()"

    def test_call(self):
        assert format_expr(call("sqrt", E.Var("x"))) == "sqrt(x)"

    def test_vector_const(self):
        assert format_expr(E.VectorConst((5, 6, 7, 8))) == "{5, 6, 7, 8}"

    def test_gather_and_internal(self):
        assert "stride=2" in format_expr(E.GatherPop(stride=2))
        assert format_expr(E.InternalPop(0)) == "buf0.pop()"


class TestStatements:
    def test_rpush_matches_figure_3(self):
        body = (S.RPush(E.Lane(E.Var("r0_v"), 3), E.IntConst(6)),)
        assert format_body(body) == "rpush(r0_v.{3}, 6);"

    def test_for_loop_format(self):
        b = WorkBuilder()
        with b.loop("i", 0, 2):
            b.push(b.pop())
        text = format_body(b.build())
        assert "for (i : 0 to 2) {" in text
        assert "push(pop());" in text

    def test_if_else_format(self):
        b = WorkBuilder()
        x = b.let("x", 1.0)
        with b.if_(x.gt(0.0)):
            b.push(x)
        with b.orelse():
            b.push(0.0)
        text = format_body(b.build())
        assert "if (" in text and "} else {" in text

    def test_declarations(self):
        b = WorkBuilder()
        b.array("coeff", FLOAT, 2, init=(0.5, 1.5))
        assert format_body(b.build()) == "float coeff[2] = {0.5, 1.5};"

    def test_lane_assignment(self):
        body = (S.Assign(LaneLV("t_v", 0), E.Pop()),)
        assert format_body(body) == "t_v.{0} = pop();"

    def test_advances(self):
        body = (S.AdvanceReader(6), S.AdvanceWriter(6))
        text = format_body(body)
        assert "advance_reader(6);" in text
        assert "advance_writer(6);" in text

    def test_indentation(self):
        b = WorkBuilder()
        with b.loop("i", 0, 2):
            with b.loop("j", 0, 2):
                b.push(0.0)
        lines = format_body(b.build()).splitlines()
        assert lines[2].startswith("    push")
