"""Tests for the WorkBuilder DSL."""

import pytest

from repro.ir import FLOAT, INT, WorkBuilder, call
from repro.ir import expr as E
from repro.ir import lvalue as L
from repro.ir import stmt as S


class TestDeclarations:
    def test_let_emits_decl_and_returns_var(self):
        b = WorkBuilder()
        x = b.let("x", 1.5)
        assert x == E.Var("x")
        assert b.build() == (S.DeclVar("x", FLOAT, E.FloatConst(1.5)),)

    def test_let_with_int_type(self):
        b = WorkBuilder()
        b.let("n", 3, ty=INT)
        assert b.build()[0].type == INT

    def test_declare_without_init(self):
        b = WorkBuilder()
        b.declare("y")
        assert b.build() == (S.DeclVar("y", FLOAT, None),)

    def test_array_returns_indexable_handle(self):
        b = WorkBuilder()
        a = b.array("a", FLOAT, 4)
        assert a[2] == E.ArrayRead("a", E.IntConst(2))

    def test_array_with_init(self):
        b = WorkBuilder()
        b.array("a", FLOAT, 2, init=(1.0, 2.0))
        assert b.build()[0].init == (1.0, 2.0)

    def test_array_init_length_mismatch(self):
        b = WorkBuilder()
        with pytest.raises(ValueError):
            b.array("a", FLOAT, 3, init=(1.0,))

    def test_array_size_must_be_positive(self):
        b = WorkBuilder()
        with pytest.raises(ValueError):
            b.array("a", FLOAT, 0)


class TestStatements:
    def test_set_var(self):
        b = WorkBuilder()
        x = b.let("x", 0.0)
        b.set(x, x + 1.0)
        assert isinstance(b.build()[1], S.Assign)
        assert b.build()[1].lhs == L.VarLV("x")

    def test_set_array_element(self):
        b = WorkBuilder()
        a = b.array("a", FLOAT, 4)
        b.set(a[1], 2.0)
        assert b.build()[1].lhs == L.ArrayLV("a", E.IntConst(1))

    def test_set_lane(self):
        b = WorkBuilder()
        v = b.declare("v")
        b.set(v.lane(3), 1.0)
        assert b.build()[1].lhs == L.LaneLV("v", 3)

    def test_set_rejects_non_assignable(self):
        b = WorkBuilder()
        with pytest.raises(TypeError):
            b.set(E.IntConst(1), 2)

    def test_push_and_rpush(self):
        b = WorkBuilder()
        b.push(1.0)
        b.rpush(2.0, 4)
        stmts = b.build()
        assert stmts[0] == S.Push(E.FloatConst(1.0))
        assert stmts[1] == S.RPush(E.FloatConst(2.0), E.IntConst(4))

    def test_tape_expressions(self):
        b = WorkBuilder()
        assert b.pop() == E.Pop()
        assert b.peek(3) == E.Peek(E.IntConst(3))
        assert b.vpop() == E.VPop()

    def test_stmt_wraps_expression(self):
        b = WorkBuilder()
        b.stmt(b.pop())
        assert b.build() == (S.ExprStmt(E.Pop()),)


class TestControlFlow:
    def test_loop_yields_var_and_builds_for(self):
        b = WorkBuilder()
        with b.loop("i", 0, 4) as i:
            b.push(i)
        (loop,) = b.build()
        assert isinstance(loop, S.For)
        assert loop.var == "i"
        assert loop.end == E.IntConst(4)
        assert loop.body == (S.Push(E.Var("i")),)

    def test_nested_loops(self):
        b = WorkBuilder()
        with b.loop("i", 0, 2):
            with b.loop("j", 0, 3) as j:
                b.push(j)
        (outer,) = b.build()
        assert isinstance(outer.body[0], S.For)

    def test_if_without_else(self):
        b = WorkBuilder()
        x = b.let("x", 1.0)
        with b.if_(x.gt(0.0)):
            b.push(x)
        stmt = b.build()[1]
        assert isinstance(stmt, S.If)
        assert stmt.else_body == ()

    def test_if_with_orelse(self):
        b = WorkBuilder()
        x = b.let("x", 1.0)
        with b.if_(x.gt(0.0)):
            b.push(x)
        with b.orelse():
            b.push(-x)
        stmt = b.build()[1]
        assert len(stmt.then_body) == 1
        assert len(stmt.else_body) == 1

    def test_orelse_requires_preceding_if(self):
        b = WorkBuilder()
        with pytest.raises(RuntimeError):
            with b.orelse():
                pass

    def test_orelse_not_allowed_after_other_statement(self):
        b = WorkBuilder()
        x = b.let("x", 1.0)
        with b.if_(x.gt(0.0)):
            b.push(x)
        b.push(0.0)
        with pytest.raises(RuntimeError):
            with b.orelse():
                pass

    def test_unclosed_block_detected(self):
        b = WorkBuilder()
        ctx = b.loop("i", 0, 2)
        ctx.__enter__()
        with pytest.raises(RuntimeError):
            b.build()
