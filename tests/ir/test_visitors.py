"""Tests for IR traversal and rewriting."""

from repro.ir import expr as E
from repro.ir import lvalue as L
from repro.ir import stmt as S
from repro.ir.types import FLOAT
from repro.ir.visitors import (
    iter_all_exprs,
    iter_expr,
    iter_stmts,
    rewrite_body_exprs,
    rewrite_body_stmts,
    rewrite_expr,
)


def _sample_body() -> S.Body:
    return (
        S.DeclVar("x", FLOAT, E.Pop()),
        S.For("i", E.IntConst(0), E.IntConst(3), (
            S.Assign(L.ArrayLV("a", E.Var("i")),
                     E.Var("x") * E.Peek(E.Var("i"))),
        )),
        S.If(E.Var("x").gt(0.0), (S.Push(E.Var("x")),),
             (S.Push(E.FloatConst(0.0)),)),
    )


class TestIteration:
    def test_iter_expr_preorder(self):
        expr = E.Var("a") + E.Var("b") * E.Var("c")
        names = [e.name for e in iter_expr(expr) if isinstance(e, E.Var)]
        assert names == ["a", "b", "c"]

    def test_iter_stmts_descends_into_loops_and_ifs(self):
        kinds = [type(s).__name__ for s in iter_stmts(_sample_body())]
        assert kinds == ["DeclVar", "For", "Assign", "If", "Push", "Push"]

    def test_iter_all_exprs_finds_tape_reads(self):
        pops = [e for e in iter_all_exprs(_sample_body())
                if isinstance(e, (E.Pop, E.Peek))]
        assert len(pops) == 2

    def test_iter_all_exprs_includes_lvalue_indices(self):
        found = [e for e in iter_all_exprs(_sample_body())
                 if isinstance(e, E.Var) and e.name == "i"]
        assert found  # the ArrayLV index and the Peek offset


class TestRewriting:
    def test_rewrite_expr_bottom_up(self):
        expr = E.Var("a") + E.IntConst(1)

        def bump(e: E.Expr) -> E.Expr:
            if isinstance(e, E.IntConst):
                return E.IntConst(e.value + 10)
            return e

        assert rewrite_expr(expr, bump) == E.Var("a") + E.IntConst(11)

    def test_rewrite_body_exprs_rewrites_everywhere(self):
        renamed = rewrite_body_exprs(
            _sample_body(),
            lambda e: E.Var("y") if e == E.Var("x") else e)
        assert all(E.Var("x") not in list(iter_expr(top))
                   for s in iter_stmts(renamed)
                   for top in [*_tops(s)])

    def test_rewrite_body_stmts_replace(self):
        body = (S.Push(E.IntConst(1)), S.Push(E.IntConst(2)))
        doubled = rewrite_body_stmts(
            body,
            lambda s: S.Push(E.IntConst(s.value.value * 2))
            if isinstance(s, S.Push) else s)
        assert doubled == (S.Push(E.IntConst(2)), S.Push(E.IntConst(4)))

    def test_rewrite_body_stmts_delete(self):
        body = (S.Push(E.IntConst(1)), S.ExprStmt(E.Pop()))
        kept = rewrite_body_stmts(
            body, lambda s: None if isinstance(s, S.ExprStmt) else s)
        assert kept == (S.Push(E.IntConst(1)),)

    def test_rewrite_body_stmts_splice(self):
        body = (S.Push(E.IntConst(1)),)
        spliced = rewrite_body_stmts(
            body,
            lambda s: (s, S.AdvanceWriter(3)) if isinstance(s, S.Push) else s)
        assert spliced == (S.Push(E.IntConst(1)), S.AdvanceWriter(3))

    def test_rewrite_recurses_into_nested_bodies(self):
        body = _sample_body()
        out = rewrite_body_stmts(
            body,
            lambda s: S.Push(E.FloatConst(9.0)) if isinstance(s, S.Push) else s)
        if_stmt = out[2]
        assert if_stmt.then_body == (S.Push(E.FloatConst(9.0)),)
        assert if_stmt.else_body == (S.Push(E.FloatConst(9.0)),)

    def test_rewrite_preserves_unchanged_structure(self):
        body = _sample_body()
        same = rewrite_body_exprs(body, lambda e: e)
        assert same == body


def _tops(stmt):
    from repro.ir.visitors import exprs_of_stmt
    return exprs_of_stmt(stmt)
