"""Tests for the static type checker."""

import pytest

from repro.graph import FilterSpec, StateVar
from repro.ir import FLOAT, INT, ArrayHandle, Param, WorkBuilder, call
from repro.ir import expr as E
from repro.ir import lvalue as L
from repro.ir import stmt as S
from repro.ir.typecheck import check_graph, check_spec
from repro.ir.types import Vector


def issues_of(work_body, init_body=(), state=(), pop=1, push=1):
    spec = FilterSpec("t", pop=pop, push=push, state=tuple(state),
                      init_body=tuple(init_body), work_body=tuple(work_body))
    return [str(i) for i in check_spec(spec)]


class TestCleanBodies:
    def test_simple_body_clean(self):
        b = WorkBuilder()
        b.push(b.pop() * 2.0)
        assert issues_of(b.build()) == []

    def test_loops_arrays_state(self):
        b = WorkBuilder()
        a = b.array("a", FLOAT, 4)
        with b.loop("i", 0, 4) as i:
            b.set(a[i], b.pop() + b.var("bias"))
        with b.loop("i", 0, 4) as i:
            b.push(a[i])
        assert issues_of(b.build(), state=(StateVar("bias", FLOAT, 0, 0.0),),
                         pop=4, push=4) == []

    def test_every_benchmark_type_checks(self):
        from repro.apps import BENCHMARKS, get_benchmark
        from repro.graph import flatten
        for name in sorted(BENCHMARKS):
            graph = flatten(get_benchmark(name))
            assert check_graph(graph) == [], name

    def test_compiled_graphs_type_check(self):
        """SIMDized bodies (gathers, lanes, vector decls) are well-typed."""
        from repro.apps import get_benchmark
        from repro.graph import flatten
        from repro.simd import compile_graph
        from repro.simd.machine import CORE_I7
        for name in ("RunningExample", "DCT", "DES"):
            compiled = compile_graph(flatten(get_benchmark(name)), CORE_I7)
            assert check_graph(compiled.graph) == [], name


class TestVariableErrors:
    def test_undeclared_use(self):
        issues = issues_of((S.Push(E.Var("ghost")),))
        assert any("undeclared variable 'ghost'" in i for i in issues)

    def test_undeclared_assignment(self):
        issues = issues_of((S.Assign(L.VarLV("ghost"), E.FloatConst(1.0)),
                            S.Push(E.Pop())))
        assert any("undeclared 'ghost'" in i for i in issues)

    def test_redeclaration(self):
        b = WorkBuilder()
        b.let("x", 1.0)
        b.let("x", 2.0)
        b.push(b.pop())
        assert any("redeclaration" in i for i in issues_of(b.build()))

    def test_array_without_index(self):
        b = WorkBuilder()
        a = b.array("a", FLOAT, 4)
        b.push(b.var("a") + b.pop())
        assert any("used without index" in i for i in issues_of(b.build()))

    def test_scalar_indexed(self):
        b = WorkBuilder()
        x = b.let("x", 1.0)
        b.push(E.ArrayRead("x", E.IntConst(0)) + b.pop())
        assert any("is not an array" in i for i in issues_of(b.build()))

    def test_loop_variable_scoped(self):
        b = WorkBuilder()
        with b.loop("i", 0, 2):
            b.push(b.pop())
        body = b.build() + (S.Push(E.Var("i")), S.ExprStmt(E.Pop()))
        issues = issues_of(body, pop=3, push=3)
        assert any("undeclared variable 'i'" in i for i in issues)


class TestTypeErrors:
    def test_float_to_int_narrowing(self):
        b = WorkBuilder()
        n = b.let("n", 0, ty=INT)
        b.set(n, b.pop())  # float tape data into int
        b.push(n)
        assert any("cannot assign" in i for i in issues_of(b.build()))

    def test_int_widens_to_float_silently(self):
        b = WorkBuilder()
        x = b.let("x", 0.0)
        b.set(x, 3)
        b.push(x + b.pop())
        assert issues_of(b.build()) == []

    def test_bitwise_on_float(self):
        b = WorkBuilder()
        b.push(b.pop() & 3)
        assert any("bitwise" in i for i in issues_of(b.build()))

    def test_wrong_intrinsic_arity(self):
        body = (S.Push(E.Call("min", (E.Pop(),))),)
        assert any("expects 2" in i for i in issues_of(body))

    def test_unbound_param_flagged(self):
        b = WorkBuilder()
        b.push(b.pop() * Param("k"))
        assert any("unbound parameter" in i for i in issues_of(b.build()))


class TestStreamingRules:
    def test_tape_read_in_init(self):
        init = WorkBuilder()
        x = init.var("x")
        init.set(x, init.pop())
        work = WorkBuilder()
        work.push(work.pop())
        issues = issues_of(work.build(), init_body=init.build(),
                           state=(StateVar("x", FLOAT, 0, 0.0),))
        assert any("tape read in init" in i for i in issues)

    def test_tape_push_in_init(self):
        init = WorkBuilder()
        init.push(1.0)
        work = WorkBuilder()
        work.push(work.pop())
        issues = issues_of(work.build(), init_body=init.build())
        assert any("tape push in init" in i for i in issues)

    def test_vector_branch_condition(self):
        body = (S.If(E.VectorConst((1.0, 0.0, 1.0, 0.0)), (), ()),
                S.Push(E.Pop()))
        assert any("vector-valued branch" in i for i in issues_of(body))


class TestVectorRules:
    def test_lane_out_of_range(self):
        body = (S.DeclVar("v", Vector(FLOAT, 4),
                          E.Broadcast(E.FloatConst(0.0), 4)),
                S.Push(E.Lane(E.Var("v"), 7)),
                S.ExprStmt(E.Pop()))
        assert any("out of range" in i for i in issues_of(body))

    def test_lane_on_scalar(self):
        b = WorkBuilder()
        x = b.let("x", 1.0)
        b.push(x.lane(0) + b.pop())
        assert any("lane access on" in i for i in issues_of(b.build()))

    def test_width_mismatch(self):
        body = (S.Push(E.BinaryOp(
            "+", E.VectorConst((1.0, 2.0)),
            E.VectorConst((1.0, 2.0, 3.0, 4.0)))),
            S.ExprStmt(E.Pop()))
        assert any("width mismatch" in i for i in issues_of(body))
