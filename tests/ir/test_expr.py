"""Tests for IR expression construction and operator overloading."""

import pytest

from repro.ir import expr as E


class TestConstruction:
    def test_as_expr_coerces_literals(self):
        assert E.as_expr(3) == E.IntConst(3)
        assert E.as_expr(2.5) == E.FloatConst(2.5)
        assert E.as_expr(True) == E.BoolConst(True)

    def test_as_expr_passes_exprs_through(self):
        v = E.Var("x")
        assert E.as_expr(v) is v

    def test_as_expr_rejects_strings(self):
        with pytest.raises(TypeError):
            E.as_expr("nope")

    def test_unknown_binary_operator_rejected(self):
        with pytest.raises(ValueError):
            E.BinaryOp("**", E.Var("x"), E.Var("y"))

    def test_unknown_unary_operator_rejected(self):
        with pytest.raises(ValueError):
            E.UnaryOp("+", E.Var("x"))

    def test_unknown_intrinsic_rejected(self):
        with pytest.raises(ValueError):
            E.Call("frobnicate", (E.Var("x"),))

    def test_call_helper(self):
        c = E.call("sin", E.Var("x"))
        assert c == E.Call("sin", (E.Var("x"),))

    def test_vector_const(self):
        vc = E.vector_const([1.0, 2.0, 3.0, 4.0])
        assert vc.values == (1.0, 2.0, 3.0, 4.0)


class TestOperatorSugar:
    def test_add(self):
        expr = E.Var("a") + E.Var("b")
        assert expr == E.BinaryOp("+", E.Var("a"), E.Var("b"))

    def test_radd_coerces(self):
        expr = 1 + E.Var("a")
        assert expr == E.BinaryOp("+", E.IntConst(1), E.Var("a"))

    def test_sub_mul_div_mod(self):
        a, b = E.Var("a"), E.Var("b")
        assert (a - b).op == "-"
        assert (a * b).op == "*"
        assert (a / b).op == "/"
        assert (a % b).op == "%"

    def test_rsub_order(self):
        expr = 5.0 - E.Var("a")
        assert expr.left == E.FloatConst(5.0)

    def test_shifts_and_bitops(self):
        a = E.Var("a")
        assert (a << 2).op == "<<"
        assert (a >> 2).op == ">>"
        assert (a & 3).op == "&"
        assert (a | 3).op == "|"
        assert (a ^ 3).op == "^"

    def test_negation(self):
        expr = -E.Var("a")
        assert expr == E.UnaryOp("-", E.Var("a"))

    def test_comparisons_build_ir(self):
        a = E.Var("a")
        assert a.eq(1).op == "=="
        assert a.ne(1).op == "!="
        assert a.lt(1).op == "<"
        assert a.le(1).op == "<="
        assert a.gt(1).op == ">"
        assert a.ge(1).op == ">="

    def test_logical_ops(self):
        a, b = E.Var("a"), E.Var("b")
        assert a.logical_and(b).op == "&&"
        assert a.logical_or(b).op == "||"

    def test_lane_access(self):
        expr = E.Var("v").lane(2)
        assert expr == E.Lane(E.Var("v"), 2)


class TestValueSemantics:
    def test_expressions_are_hashable_and_comparable(self):
        a1 = E.Var("x") * 2.0 + E.Peek(E.IntConst(3))
        a2 = E.Var("x") * 2.0 + E.Peek(E.IntConst(3))
        assert a1 == a2
        assert hash(a1) == hash(a2)

    def test_pop_instances_equal(self):
        assert E.Pop() == E.Pop()

    def test_gather_defaults(self):
        g = E.GatherPop(stride=3)
        assert g.advance == 1
        assert g.strategy == "scalar"
