"""Tests for constant-abstracted structural hashing (isomorphism, §3.3)."""

from repro.ir import FLOAT, WorkBuilder, canonicalize, isomorphic


def _figure6_b(divisor: float):
    """Figure 6a's B actor with a per-instance divisor constant."""
    b = WorkBuilder()
    with b.loop("i", 0, 3):
        a0 = b.let("a0", b.pop())
        a1 = b.let("a1", b.pop())
        b.push((a0 * a1) / divisor)
    return b.build()


class TestIsomorphism:
    def test_identical_bodies(self):
        assert isomorphic(_figure6_b(5.0), _figure6_b(5.0))

    def test_differing_constants_are_isomorphic(self):
        """The paper's B0..B3 differ only in the divisor (5/6/7/8)."""
        assert isomorphic(_figure6_b(5.0), _figure6_b(8.0))

    def test_structural_difference_is_not_isomorphic(self):
        b = WorkBuilder()
        with b.loop("i", 0, 3):
            a0 = b.let("a0", b.pop())
            a1 = b.let("a1", b.pop())
            b.push(a0 + a1)  # + instead of /
        assert not isomorphic(_figure6_b(5.0), b.build())

    def test_different_variable_names_not_isomorphic(self):
        b1 = WorkBuilder()
        b1.push(b1.let("x", b1.pop()) * 2.0)
        b2 = WorkBuilder()
        b2.push(b2.let("y", b2.pop()) * 2.0)
        assert not isomorphic(b1.build(), b2.build())

    def test_differing_array_initialisers_are_isomorphic(self):
        """FIR filters that differ only in coefficient tables merge."""
        def fir(coeffs):
            b = WorkBuilder()
            c = b.array("c", FLOAT, len(coeffs), init=coeffs)
            acc = b.let("acc", 0.0)
            with b.loop("i", 0, len(coeffs)) as i:
                b.set(acc, acc + b.peek(i) * c[i])
            b.push(acc)
            b.stmt(b.pop())
            return b.build()

        assert isomorphic(fir((1.0, 2.0)), fir((3.0, 4.0)))
        assert not isomorphic(fir((1.0, 2.0)), fir((1.0, 2.0, 3.0)))


class TestCanonicalForm:
    def test_constants_collected_in_order(self):
        form = canonicalize(_figure6_b(5.0))
        assert 5.0 in form.constants
        assert 3.0 in form.constants  # the loop bound

    def test_shape_key_stable(self):
        assert (canonicalize(_figure6_b(5.0)).shape_key
                == canonicalize(_figure6_b(7.0)).shape_key)

    def test_param_abstracts_to_slot(self):
        from repro.ir import Param
        b1 = WorkBuilder()
        b1.push(b1.pop() * Param("k"))
        b2 = WorkBuilder()
        b2.push(b2.pop() * 3.0)
        assert isomorphic(b1.build(), b2.build())
