"""CLI tests for ``macross run --cores`` and ``macross multicore``."""

import pytest

from repro.cli import main


class TestRunCores:
    def test_run_with_cores_reports_parallel_stats(self, capsys):
        assert main(["run", "DCT", "--iterations", "2", "--cores", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 cores" in out
        assert "parallel run" in out
        assert "channel(s)" in out and "stall(s)" in out

    def test_run_single_core_stays_sequential(self, capsys):
        assert main(["run", "DCT", "--iterations", "2"]) == 0
        out = capsys.readouterr().out
        assert "parallel run" not in out

    def test_run_cores_compiled_backend(self, capsys):
        assert main(["run", "DCT", "--iterations", "2", "--cores", "2",
                     "--backend", "compiled"]) == 0
        out = capsys.readouterr().out
        assert "kernel cache" in out
        assert "outputs identical: " in out


class TestMulticoreCommand:
    def test_table_shape_and_parity(self, capsys):
        assert main(["multicore", "dct", "--cores", "4"]) == 0
        out = capsys.readouterr().out
        assert "lpt partitioner" in out
        assert "model cyc/out" in out and "wall ms" in out
        assert "scalar" in out and "+MacroSS" in out
        assert "MISMATCH" not in out
        assert out.count(" ok") >= 2  # scalar + SIMD rows

    def test_default_core_counts(self, capsys):
        assert main(["multicore", "DCT", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        for cores in ("1  scalar", "2  scalar", "4  scalar"):
            assert cores in out.replace("   ", "  ")

    def test_repeatable_cores_and_partitioner(self, capsys):
        assert main(["multicore", "DCT", "--cores", "2", "--cores", "3",
                     "--partitioner", "contiguous"]) == 0
        out = capsys.readouterr().out
        assert "contiguous partitioner" in out

    def test_compiled_backend(self, capsys):
        assert main(["multicore", "DCT", "--cores", "2",
                     "--backend", "compiled"]) == 0
        out = capsys.readouterr().out
        assert "compiled backend" in out
        assert "MISMATCH" not in out

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            main(["multicore", "NotABench"])

    def test_trace_capture(self, tmp_path, capsys):
        path = tmp_path / "mc.jsonl"
        assert main(["multicore", "DCT", "--cores", "2",
                     "--trace", str(path)]) == 0
        out = capsys.readouterr().out
        assert path.is_file()
        assert "written to" in out
        text = path.read_text()
        assert "core0" in text and "parallel_execute" in text
