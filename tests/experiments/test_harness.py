"""Tests for the experiment harness utilities."""

import pytest

from repro.experiments.harness import (
    DEFAULT_BENCHMARKS,
    Variants,
    arithmetic_mean,
    geometric_mean,
    resolve_benchmarks,
)
from repro.experiments.tables import format_table
from repro.simd.machine import CORE_I7
from repro.simd.pipeline import SINGLE_ACTOR_ONLY


class TestResolve:
    def test_default_list(self):
        assert resolve_benchmarks(None) == list(DEFAULT_BENCHMARKS)

    def test_explicit_subset(self):
        assert resolve_benchmarks(["FFT", "DCT"]) == ["FFT", "DCT"]

    def test_unknown_rejected(self):
        with pytest.raises(KeyError):
            resolve_benchmarks(["FFT", "Bogus"])

    def test_non_default_benchmarks_resolvable(self):
        assert resolve_benchmarks(["DES", "Radar"]) == ["DES", "Radar"]


class TestMeans:
    def test_arithmetic(self):
        assert arithmetic_mean([1.0, 2.0, 3.0]) == 2.0
        assert arithmetic_mean([]) == 0.0

    def test_geometric(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        assert geometric_mean([]) == 0.0


class TestVariants:
    def test_measurements_cached(self):
        v = Variants("BitonicSort", CORE_I7)
        first = v.macro_cpo()
        second = v.macro_cpo()
        assert first == second
        assert "macro" in v._cpo

    def test_distinct_tags_distinct_measurements(self):
        v = Variants("BitonicSort", CORE_I7)
        full = v.macro_cpo()
        single = v.macro_cpo(SINGLE_ACTOR_ONLY, tag="single")
        assert single >= full  # single-actor only can't beat full MacroSS

    def test_baseline_positive(self):
        assert Variants("FFT", CORE_I7).baseline_cpo() > 0


class TestTables:
    def test_format_alignment(self):
        text = format_table(["name", "x"], [("a", 1.0), ("long-name", 22.5)])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert "-" in lines[1]
        assert lines[3].startswith("long-name")
        assert lines[2].endswith("1.00")

    def test_non_numeric_cells(self):
        text = format_table(["k", "v"], [("a", "yes")])
        assert "yes" in text
