"""Tests for the textual feedbackloop syntax."""

import pytest

from repro.frontend import ParseError, compile_source, parse
from repro.frontend.ast_nodes import FeedbackDecl
from repro.graph import flatten, validate
from repro.runtime import execute

ECHO = """
void->float filter Ramp() {
    float t = 0.0;
    work push 1 { push(t); t = t + 1.0; }
}

float->float filter Mix() {
    work pop 2 push 1 { push(pop() + pop()); }
}

float->float filter Decay(float k) {
    work pop 1 push 1 { push(pop() * k); }
}

float->float filter Id() {
    work pop 1 push 1 { push(pop()); }
}

float->float feedbackloop Echo(float k) {
    join roundrobin(1, 1);
    body Mix();
    loop Decay(k);
    split duplicate;
    enqueue(0.0);
}

float->float pipeline Main() {
    add Ramp();
    add Echo(0.5);
    add Id();
}
"""


class TestParsing:
    def test_feedback_decl_parsed(self):
        decls = parse(ECHO)
        echo = next(d for d in decls if isinstance(d, FeedbackDecl))
        assert echo.name == "Echo"
        assert echo.split.kind == "duplicate"
        assert len(echo.enqueue) == 1
        assert echo.body.name == "Mix"
        assert echo.loop.name == "Decay"

    def test_missing_enqueue_rejected(self):
        bad = ECHO.replace("    enqueue(0.0);\n", "")
        with pytest.raises(ParseError):
            parse(bad)

    def test_body_loop_are_contextual_identifiers(self):
        """'loop' outside a feedbackloop body is an ordinary name."""
        source = """
        void->float filter S() {
            float loop = 1.0;
            work push 1 { push(loop); }
        }
        float->float filter Id() { work pop 1 push 1 { push(pop()); } }
        float->float pipeline Main() { add S(); add Id(); }
        """
        program = compile_source(source)
        outputs = execute(flatten(program), iterations=2).outputs
        assert outputs == [1.0, 1.0]


class TestExecution:
    def test_echo_semantics(self):
        graph = flatten(compile_source(ECHO))
        validate(graph)
        outputs = execute(graph, iterations=5).outputs
        expected, y = [], 0.0
        for n in range(5):
            y = n + 0.5 * y
            expected.append(y)
        assert outputs == expected

    def test_roundrobin_split_variant(self):
        source = ECHO.replace("split duplicate;", "split roundrobin(1, 1);") \
                     .replace("work pop 2 push 1 { push(pop() + pop()); }",
                              "work pop 2 push 2 { float s = pop() + pop();"
                              " push(s); push(s); }")
        graph = flatten(compile_source(source))
        validate(graph)
        outputs = execute(graph, iterations=4).outputs
        assert len(outputs) == 4
