"""Tests for lowering textual programs to executable graphs."""

import pytest

from repro.frontend import LoweringError, compile_source
from repro.graph import flatten, validate
from repro.runtime import execute
from repro.simd import compile_graph
from repro.simd.machine import CORE_I7

PROGRAM = """
void->float filter Ramp(int n) {
    float t = 0.0;
    work push n {
        for (int i = 0; i < n; i++) { push(t); t = t + 1.0; }
    }
}

float->float filter Scale(float k) {
    work pop 1 push 1 { push(pop() * k); }
}

float->float filter Sum(int n) {
    work pop n push 1 {
        float acc = 0.0;
        for (int i = 0; i < n; i++) { acc += pop(); }
        push(acc);
    }
}

float->float pipeline Main() {
    add Ramp(4);
    add Scale(2.0);
    add Sum(2);
}
"""


class TestLowering:
    def test_executes_correctly(self):
        graph = flatten(compile_source(PROGRAM))
        validate(graph)
        outputs = execute(graph, iterations=2).outputs
        # ramp 0,1,2,3.. -> x2 -> pairwise sums: (0+2), (4+6), ...
        assert outputs == [2.0, 10.0, 18.0, 26.0]

    def test_rates_from_params(self):
        graph = flatten(compile_source(PROGRAM))
        total = graph.actor_by_name("Sum")
        assert total.spec.pop == 2

    def test_top_with_args(self):
        source = PROGRAM + """
        float->float pipeline Scaled(float k) {
            add Ramp(4);
            add Scale(k);
        }
        """
        program = compile_source(source, top="Scaled", args=(10.0,))
        outputs = execute(flatten(program), iterations=1).outputs
        assert outputs == [0.0, 10.0, 20.0, 30.0]

    def test_unknown_stream(self):
        with pytest.raises(LoweringError):
            compile_source(PROGRAM, top="Nope")

    def test_wrong_arity(self):
        with pytest.raises(LoweringError):
            compile_source(PROGRAM + """
                float->float pipeline Bad() { add Scale(1.0, 2.0); }
            """, top="Bad")

    def test_duplicate_names_rejected(self):
        with pytest.raises(LoweringError):
            compile_source(SIMPLE := """
                float->float filter A() { work pop 1 push 1 { push(pop()); } }
                float->float filter A() { work pop 1 push 1 { push(pop()); } }
                float->float pipeline Main() { add A(); }
            """)

    def test_parsed_program_simdizes(self):
        """Full path: text -> graph -> MacroSS -> identical outputs."""
        source = PROGRAM + """
        float->float splitjoin Bank() {
            split roundrobin(1, 1, 1, 1);
            add Scale(1.0);
            add Scale(2.0);
            add Scale(3.0);
            add Scale(4.0);
            join roundrobin(1, 1, 1, 1);
        }
        float->float pipeline Wide() {
            add Ramp(4);
            add Bank();
            add Sum(4);
        }
        """
        graph = flatten(compile_source(source, top="Wide"))
        baseline = execute(graph, iterations=4).outputs
        compiled = compile_graph(graph, CORE_I7)
        decisions = set(compiled.report.decisions.values())
        assert "horizontal" in decisions
        outputs = execute(compiled.graph, machine=CORE_I7,
                          iterations=4).outputs
        n = min(len(baseline), len(outputs))
        assert outputs[:n] == baseline[:n]

    def test_state_array_with_param_init(self):
        source = """
        void->float filter Pulse(float amp) {
            float wave[4] = {1.0, 0.5, -0.5, -1.0};
            int idx = 0;
            work push 1 {
                push(wave[idx] * amp);
                idx = (idx + 1) % 4;
            }
        }
        float->float filter Id() { work pop 1 push 1 { push(pop()); } }
        float->float pipeline Main() { add Pulse(3.0); add Id(); }
        """
        outputs = execute(flatten(compile_source(source)),
                          iterations=4).outputs
        assert outputs == [3.0, 1.5, -1.5, -3.0]
