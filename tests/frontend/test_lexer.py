"""Tests for the textual frontend lexer."""

import pytest

from repro.frontend import LexError, tokenize


def kinds(source):
    return [(t.kind, t.text) for t in tokenize(source)[:-1]]


class TestTokens:
    def test_identifiers_and_keywords(self):
        assert kinds("filter Foo") == [("keyword", "filter"),
                                       ("ident", "Foo")]

    def test_numbers(self):
        assert kinds("42") == [("int", "42")]
        assert kinds("3.25") == [("float", "3.25")]
        assert kinds("1e3") == [("float", "1e3")]
        assert kinds("2.5e-2") == [("float", "2.5e-2")]

    def test_multichar_operators(self):
        assert kinds("-> == <= ++ +=") == [
            ("op", "->"), ("op", "=="), ("op", "<="),
            ("op", "++"), ("op", "+=")]

    def test_line_comments(self):
        assert kinds("a // comment\nb") == [("ident", "a"), ("ident", "b")]

    def test_block_comments(self):
        assert kinds("a /* x\ny */ b") == [("ident", "a"), ("ident", "b")]

    def test_unterminated_block_comment(self):
        with pytest.raises(LexError):
            tokenize("/* never ends")

    def test_line_numbers(self):
        tokens = tokenize("a\nb\n  c")
        assert [t.line for t in tokens[:-1]] == [1, 2, 3]

    def test_eof_token(self):
        assert tokenize("")[-1].kind == "eof"

    def test_unknown_character(self):
        with pytest.raises(LexError):
            tokenize("a $ b")
