"""Tests for the textual frontend parser."""

import pytest

from repro.frontend import ParseError, parse
from repro.frontend.ast_nodes import CompositeDecl, FilterDecl
from repro.ir import expr as E
from repro.ir import stmt as S

SIMPLE_FILTER = """
float->float filter Scale(float k) {
    work pop 1 push 1 {
        push(pop() * k);
    }
}
"""


class TestFilterParsing:
    def test_basic_filter(self):
        (decl,) = parse(SIMPLE_FILTER)
        assert isinstance(decl, FilterDecl)
        assert decl.name == "Scale"
        assert decl.in_type == decl.out_type == "float"
        assert decl.rates.pop == E.IntConst(1)
        assert decl.rates.push == E.IntConst(1)

    def test_param_references_become_param_nodes(self):
        (decl,) = parse(SIMPLE_FILTER)
        push = decl.work_body[0]
        assert isinstance(push, S.Push)
        assert push.value == E.BinaryOp("*", E.Pop(), E.Param("k"))

    def test_peek_rate(self):
        (decl,) = parse("""
            float->float filter W(int n) {
                work pop 1 push 1 peek n {
                    push(peek(0));
                    pop();
                }
            }
        """)
        assert decl.rates.peek == E.Param("n")

    def test_state_declarations(self):
        (decl,) = parse("""
            void->float filter Src() {
                float t = 1.5;
                int idx;
                float hist[4];
                float coeff[2] = {0.5, 0.25};
                work push 1 { push(t); t = t + 1.0; }
            }
        """)
        names = [s.name for s in decl.states]
        assert names == ["t", "idx", "hist", "coeff"]
        assert decl.states[0].init == E.FloatConst(1.5)
        assert decl.states[2].size == 4
        assert decl.states[3].array_init == (E.FloatConst(0.5),
                                             E.FloatConst(0.25))

    def test_init_block(self):
        (decl,) = parse("""
            float->float filter F() {
                float c[2];
                init { c[0] = 1.0; c[1] = 2.0; }
                work pop 1 push 1 { push(pop() * c[0]); }
            }
        """)
        assert len(decl.init_body) == 2

    def test_missing_work_rejected(self):
        with pytest.raises(ParseError):
            parse("float->float filter F() { }")


class TestStatements:
    def _work_body(self, body_text):
        (decl,) = parse(f"""
            float->float filter F() {{
                work pop 1 push 1 {{ {body_text} }}
            }}
        """)
        return decl.work_body

    def test_single_push(self):
        (stmt,) = self._work_body("push(pop());")
        assert isinstance(stmt, S.Push)

    def test_for_loop_desugar(self):
        body = self._work_body(
            "float s = 0.0;"
            "for (int i = 0; i < 4; i++) { s += 1.0; }"
            "push(pop() + s);")
        loop = body[1]
        assert isinstance(loop, S.For)
        assert loop.var == "i"
        assert loop.end == E.IntConst(4)
        inner = loop.body[0]
        assert inner == S.Assign(
            __import__("repro.ir.lvalue", fromlist=["VarLV"]).VarLV("s"),
            E.BinaryOp("+", E.Var("s"), E.FloatConst(1.0)))

    def test_for_loop_bad_condition_var(self):
        with pytest.raises(ParseError):
            self._work_body("for (int i = 0; j < 4; i++) { } push(pop());")

    def test_if_else_chain(self):
        body = self._work_body("""
            float x = pop();
            if (x > 0.0) { push(x); }
            else if (x < -1.0) { push(-x); }
            else { push(0.0); }
        """)
        if_stmt = body[1]
        assert isinstance(if_stmt, S.If)
        assert isinstance(if_stmt.else_body[0], S.If)

    def test_compound_assignment(self):
        body = self._work_body("float x = pop(); x *= 2.0; push(x);")
        assert body[1].rhs == E.BinaryOp("*", E.Var("x"), E.FloatConst(2.0))

    def test_array_assignment(self):
        body = self._work_body(
            "float a[2]; a[0] = pop(); a[1] = a[0]; push(a[1]);")
        from repro.ir.lvalue import ArrayLV
        assert body[1].lhs == ArrayLV("a", E.IntConst(0))

    def test_ternary(self):
        body = self._work_body("float x = pop(); push(x > 0.0 ? x : -x);")
        assert isinstance(body[1].value, E.Select)

    def test_bare_pop_statement(self):
        body = self._work_body("push(peek(0)); pop();")
        assert body[1] == S.ExprStmt(E.Pop())

    def test_math_call(self):
        body = self._work_body("push(sqrt(abs(pop())));")
        assert body[0].value == E.Call("sqrt", (E.Call("abs", (E.Pop(),)),))

    def test_unknown_function_rejected(self):
        with pytest.raises(ParseError):
            self._work_body("push(frobnicate(pop()));")


class TestComposites:
    def test_pipeline(self):
        decls = parse(SIMPLE_FILTER + """
            float->float pipeline Main() {
                add Scale(2.0);
                add Scale(3.0);
            }
        """)
        main = decls[1]
        assert isinstance(main, CompositeDecl)
        assert main.kind == "pipeline"
        assert [a.name for a in main.adds] == ["Scale", "Scale"]
        assert main.adds[0].args == (E.FloatConst(2.0),)

    def test_splitjoin(self):
        decls = parse(SIMPLE_FILTER + """
            float->float splitjoin Eq() {
                split duplicate;
                add Scale(1.0);
                add Scale(2.0);
                join roundrobin(1, 1);
            }
        """)
        sj = decls[1]
        assert sj.split.kind == "duplicate"
        assert sj.join == (E.IntConst(1), E.IntConst(1))

    def test_splitjoin_without_join_rejected(self):
        with pytest.raises(ParseError):
            parse(SIMPLE_FILTER + """
                float->float splitjoin Bad() {
                    split duplicate;
                    add Scale(1.0);
                }
            """)

    def test_anonymous_splitjoin(self):
        decls = parse(SIMPLE_FILTER + """
            float->float pipeline Main() {
                add splitjoin {
                    split roundrobin(1, 1);
                    add Scale(1.0);
                    add Scale(2.0);
                    join roundrobin(1, 1);
                };
            }
        """)
        main = decls[1]
        assert main.adds[0].inline is not None
        assert main.adds[0].inline.kind == "splitjoin"
