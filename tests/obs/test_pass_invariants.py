"""Pass-invariant tests built on the driver's ``pass_hook``.

After *every* Algorithm-1 pass — not just at the end of compilation —
the work graph must

* validate structurally (ports, rates, body/rate consistency);
* admit a balanced repetition vector with positive repetitions;
* keep every actor reachable from the actor table (no dangling tapes).

This pins the property that each pass leaves the graph in a consistent
state, so a future pass reordering or a new pass inserted mid-driver
cannot silently rely on a later pass repairing its breakage.

Parametrized over every registered application × {Core-i7, Core-i7+SAGU,
NEON}.
"""

from __future__ import annotations

import pytest

from repro.apps import BENCHMARKS
from repro.experiments.harness import scalar_graph
from repro.graph.validate import collect_problems
from repro.schedule.rates import check_balanced, repetition_vector
from repro.simd import (
    CORE_I7,
    CORE_I7_SAGU,
    NEON_LIKE,
    PASS_NAMES,
    compile_graph,
)

MACHINES = {
    "i7": CORE_I7,
    "sagu": CORE_I7_SAGU,
    "neon": NEON_LIKE,
}

ALL_APPS = sorted(BENCHMARKS)


def assert_invariants(graph, context: str) -> None:
    problems = collect_problems(graph)
    assert not problems, f"{context}: graph invalid: {problems}"
    reps = repetition_vector(graph)  # raises RateError on inconsistency
    check_balanced(graph, reps)
    assert set(reps) == set(graph.actors), \
        f"{context}: repetition vector does not cover all actors"
    bad = {aid: rep for aid, rep in reps.items() if rep < 1}
    assert not bad, f"{context}: non-positive repetitions {bad}"
    for tape in graph.tapes.values():
        assert tape.src in graph.actors and tape.dst in graph.actors, \
            f"{context}: tape {tape.id} references a removed actor"


@pytest.mark.parametrize("mach_label", sorted(MACHINES))
@pytest.mark.parametrize("app", ALL_APPS)
def test_every_pass_preserves_invariants(app, mach_label):
    machine = MACHINES[mach_label]
    seen = []

    def hook(pass_name, work):
        seen.append(pass_name)
        assert_invariants(work, f"{app}/{mach_label} after {pass_name}")

    compiled = compile_graph(scalar_graph(app), machine, pass_hook=hook)
    # The hook fires once per Algorithm-1 pass, in driver order.
    assert tuple(seen) == PASS_NAMES
    # And the final graph satisfies the same invariants.
    assert_invariants(compiled.graph, f"{app}/{mach_label} final")


@pytest.mark.parametrize("app", ["FMRadio", "DCT"])
def test_hook_sees_intermediate_not_final_graph(app):
    """The hook observes the *work* graph mid-flight: early passes see the
    pre-SIMDization actor set even when later passes shrink it."""
    sizes = {}

    def hook(pass_name, work):
        sizes[pass_name] = len(work.actors)

    compiled = compile_graph(scalar_graph(app), CORE_I7, pass_hook=hook)
    assert sizes["prepass.analysis"] == len(scalar_graph(app).actors)
    assert sizes["tape.optimize"] == len(compiled.graph.actors)


def test_rate_consistency_survives_equation1_rescaling():
    """Apps whose SIMDization rescales the repetition vector (M > 1)
    still balance at every boundary."""
    hit = []
    for app in ALL_APPS:
        reports = compile_graph(scalar_graph(app), CORE_I7).report
        if reports.scaling_factor > 1:
            hit.append(app)

            def hook(pass_name, work):
                check_balanced(work, repetition_vector(work))

            compile_graph(scalar_graph(app), CORE_I7, pass_hook=hook)
    assert hit, "expected at least one app with Equation (1) scaling > 1"
