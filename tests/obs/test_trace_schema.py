"""Trace-schema tests: Chrome export validity, JSONL round-trips, and the
disabled tracer's zero-event / near-zero-overhead contract."""

from __future__ import annotations

import json
import threading
import time

import pytest

from repro.experiments.harness import scalar_graph
from repro.obs import (
    NULL_TRACER,
    Tracer,
    chrome_trace,
    pass_rows,
    pass_table,
    read_jsonl,
    write_jsonl,
    write_trace,
)
from repro.runtime import execute
from repro.simd import CORE_I7, PASS_NAMES, compile_graph

#: Timestamp slack (µs) for float comparisons in nesting checks.
EPS = 1e-6


def captured_trace(app: str = "FMRadio", iterations: int = 2) -> Tracer:
    tracer = Tracer()
    compiled = compile_graph(scalar_graph(app), CORE_I7, tracer=tracer)
    execute(compiled.graph, machine=CORE_I7, iterations=iterations,
            backend="compiled", tracer=tracer)
    return tracer


class TestChromeExport:
    def test_valid_json_and_schema(self, tmp_path):
        tracer = captured_trace()
        path = write_trace(tracer, tmp_path / "trace.json")
        doc = json.loads(path.read_text())  # must parse
        events = doc["traceEvents"]
        assert events, "trace must not be empty"
        for event in events:
            assert event["ph"] in ("X", "i")
            assert isinstance(event["ts"], (int, float))
            assert event["ts"] >= 0
            assert event["pid"] == 1
            assert isinstance(event["tid"], int)
            if event["ph"] == "X":
                assert event["dur"] >= 0
            assert isinstance(event["args"], dict)

    def test_covers_every_algorithm1_pass_and_runtime(self, tmp_path):
        doc = chrome_trace(captured_trace())
        names = [e["name"] for e in doc["traceEvents"]]
        for pass_name in PASS_NAMES:
            assert pass_name in names
        for runtime_span in ("execute", "runtime.setup", "runtime.init",
                             "runtime.steady"):
            assert runtime_span in names

    def test_span_timestamps_monotonic_and_properly_nested(self):
        tracer = captured_trace()
        by_tid = {}
        for span in tracer.spans():
            by_tid.setdefault(span.tid, []).append(span)
        for spans in by_tid.values():
            spans.sort(key=lambda s: (s.ts, -s.dur))
            starts = [s.ts for s in spans]
            assert starts == sorted(starts)
            # Interval containment: any two spans on one thread are either
            # disjoint or one contains the other (context managers close
            # LIFO, so this must hold by construction).
            stack = []
            for span in spans:
                while stack and span.ts >= stack[-1].end - EPS:
                    stack.pop()
                if stack:
                    assert span.end <= stack[-1].end + EPS, \
                        f"{span.name} straddles {stack[-1].name}"
                stack.append(span)

    def test_compact_thread_ids(self):
        tracer = Tracer()

        def worker():
            with tracer.span("child"):
                time.sleep(0.001)

        threads = [threading.Thread(target=worker) for _ in range(3)]
        with tracer.span("parent"):
            for t in threads:
                t.start()
            for t in threads:
                t.join()
        doc = chrome_trace(tracer)
        tids = {e["tid"] for e in doc["traceEvents"]}
        assert tids <= set(range(len(tids)))  # renumbered from 0
        assert len(doc["traceEvents"]) == 4


class TestJsonlRoundTrip:
    def test_round_trip_identity(self, tmp_path):
        tracer = captured_trace("DCT", iterations=1)
        path = write_jsonl(tracer, tmp_path / "trace.jsonl")
        back = read_jsonl(path)
        original = list(tracer.events)
        assert len(back) == len(original)
        for a, b in zip(original, back):
            assert (a.name, a.cat, a.ph, a.tid) == (b.name, b.cat, b.ph,
                                                    b.tid)
            assert a.ts == pytest.approx(b.ts)
            assert a.dur == pytest.approx(b.dur)
        # Args survive for JSON-representable payloads.
        by_name = {e.name: e for e in back}
        assert by_name["repetition.adjust"].args["scaling_factor"] >= 1

    def test_write_trace_dispatches_on_suffix(self, tmp_path):
        tracer = Tracer()
        with tracer.span("s"):
            pass
        jsonl = write_trace(tracer, tmp_path / "t.jsonl")
        chrome = write_trace(tracer, tmp_path / "t.json")
        assert len(read_jsonl(jsonl)) == 1
        assert "traceEvents" in json.loads(chrome.read_text())

    def test_blank_lines_ignored(self, tmp_path):
        tracer = Tracer()
        tracer.event("e1")
        path = write_jsonl(tracer, tmp_path / "t.jsonl")
        path.write_text(path.read_text() + "\n\n")
        assert len(read_jsonl(path)) == 1


class TestPassTableViews:
    def test_pass_rows_in_driver_order(self):
        tracer = Tracer()
        compile_graph(scalar_graph("FMRadio"), CORE_I7, tracer=tracer)
        rows = pass_rows(tracer)
        assert [row[0] for row in rows] == list(PASS_NAMES)
        table = pass_table(tracer)
        for pass_name in PASS_NAMES:
            assert pass_name in table

    def test_pass_table_empty_capture(self):
        assert "no pass spans" in pass_table(Tracer())


class TestDisabledTracer:
    def test_zero_events_recorded(self):
        tracer = Tracer(enabled=False)
        with tracer.span("compile", cat="pass", x=1) as sp:
            sp.add(y=2)
            sp["z"] = 3
            tracer.event("instant", k="v")
        assert len(tracer) == 0
        assert tracer.events == ()

    def test_null_tracer_through_full_stack(self):
        """Instrumented code paths accept the shared NULL_TRACER and
        record nothing."""
        compiled = compile_graph(scalar_graph("DCT"), CORE_I7,
                                 tracer=NULL_TRACER)
        execute(compiled.graph, machine=CORE_I7, iterations=1,
                backend="compiled", tracer=NULL_TRACER)
        assert len(NULL_TRACER) == 0

    def test_overhead_under_five_percent_on_compiled_run(self):
        """A disabled tracer must cost <5% wall-clock on a
        compiled-backend run (the hot path it is threaded through).

        Compares min-of-N timings (min is robust to scheduler noise);
        retried to de-flake on loaded CI machines.
        """
        graph = compile_graph(scalar_graph("FMRadio"), CORE_I7).graph
        disabled = Tracer(enabled=False)

        def run(tracer):
            execute(graph, machine=CORE_I7, iterations=8,
                    backend="compiled", tracer=tracer)

        def best_of(tracer, repeats=5):
            best = float("inf")
            for _ in range(repeats):
                start = time.perf_counter()
                run(tracer)
                best = min(best, time.perf_counter() - start)
            return best

        run(None)       # warm the kernel cache for both variants
        for _attempt in range(3):
            base = best_of(None)
            traced = best_of(disabled)
            if traced <= base * 1.05:
                break
        assert traced <= base * 1.05, \
            f"disabled tracer overhead {traced / base - 1:.1%} >= 5%"
        assert len(disabled) == 0


class TestTracerCore:
    def test_span_args_enrichment(self):
        tracer = Tracer()
        with tracer.span("pass.x", cat="pass", before=1) as sp:
            sp.add(after=2)
            sp["extra"] = "yes"
        (event,) = tracer.events
        assert event.args == {"before": 1, "after": 2, "extra": "yes"}
        assert event.ph == "X"
        assert event.dur >= 0

    def test_instant_event(self):
        tracer = Tracer()
        tracer.event("finding", cat="fuzz", index=3)
        (event,) = tracer.events
        assert event.ph == "i"
        assert event.dur == 0.0
        assert event.args == {"index": 3}

    def test_clear(self):
        tracer = Tracer()
        tracer.event("e")
        tracer.clear()
        assert len(tracer) == 0

    def test_spans_filter_by_category(self):
        tracer = Tracer()
        with tracer.span("a", cat="pass"):
            with tracer.span("b", cat="runtime"):
                pass
        assert [s.name for s in tracer.spans("pass")] == ["a"]
        assert [s.name for s in tracer.spans()] == ["a", "b"]
