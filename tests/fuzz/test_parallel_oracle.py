"""The parallel-parity fuzz oracle: generated stream programs must run
event-identically on the thread-based multicore runtime, and the oracle
must actually *catch* cross-core data corruption (mutation test)."""

from __future__ import annotations

import random

import pytest

from repro.fuzz import (
    PARALLEL_CORES,
    PARALLEL_OPTION_SETS,
    check_parallel,
    check_parallel_program,
    generate_program,
)
from repro.fuzz.harness import PARALLEL_PARTITIONERS, default_backends
from repro.multicore.channels import Channel

from ..conftest import (
    linear_program,
    make_pair_sum,
    make_ramp_source,
    make_scaler,
)

#: Generated programs per oracle smoke run (CI runs 3 explicit seeds).
SMOKE_SEEDS = (0, 1, 2)


@pytest.mark.fuzz
@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_generated_programs_are_parallel_clean(seed):
    desc = generate_program(random.Random(seed))
    report = check_parallel_program(desc, stop_on_first=False)
    assert report.executions > 0
    assert report.ok, "\n".join(
        f"{d.kind} @ {d.config}: {d.detail}" for d in report.divergences)


@pytest.mark.fuzz
def test_oracle_covers_full_matrix():
    desc = generate_program(random.Random(0))
    report = check_parallel_program(desc)
    backends = 1 + len(default_backends())  # interp + installed backends
    core_configs = sum(1 if n == 1 else len(PARALLEL_PARTITIONERS)
                       for n in PARALLEL_CORES)
    expected = len(PARALLEL_OPTION_SETS) * backends * core_configs
    assert report.configs_checked == expected


@pytest.mark.fuzz
def test_oracle_is_deterministic():
    desc = generate_program(random.Random(3))
    a = check_parallel_program(desc, stop_on_first=False)
    b = check_parallel_program(desc, stop_on_first=False)
    assert (a.configs_checked, a.executions) == \
        (b.configs_checked, b.executions)
    assert [(d.kind, d.config) for d in a.divergences] == \
        [(d.kind, d.config) for d in b.divergences]


@pytest.mark.fuzz
def test_oracle_catches_cross_core_corruption(monkeypatch):
    """Mutation test: corrupt the first value that crosses a channel —
    the oracle must flag a ``parallel`` divergence, proving it compares
    real data and is not vacuous."""
    real_push = Channel.push
    state = {"corrupted": False}

    def corrupting_push(self, value):
        if not state["corrupted"]:
            state["corrupted"] = True
            value = value + 1e6 if isinstance(value, float) else value
        real_push(self, value)

    monkeypatch.setattr(Channel, "push", corrupting_push)
    graph = linear_program(make_ramp_source(4), make_scaler(name="a"),
                           make_pair_sum())
    report = check_parallel(graph, cores=(2,), backends=("interp",),
                            stop_on_first=False)
    assert not report.ok, "oracle missed an injected channel corruption"
    kinds = {d.kind for d in report.divergences}
    assert "parallel" in kinds


@pytest.mark.fuzz
def test_oracle_reports_parallel_crashes():
    """A crash inside the parallel runtime surfaces as a divergence, not
    an exception out of the oracle."""
    def exploding_push(self, value):
        raise RuntimeError("boom")

    graph = linear_program(make_ramp_source(4), make_scaler(name="a"),
                           make_pair_sum())
    original = Channel.push
    Channel.push = exploding_push
    try:
        report = check_parallel(graph, cores=(2,), backends=("interp",),
                                stop_on_first=False)
    finally:
        Channel.push = original
    assert not report.ok
    assert any("boom" in d.detail for d in report.divergences)
