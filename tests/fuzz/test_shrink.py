"""Unit tests for the deterministic greedy shrinker."""

from __future__ import annotations

import random

from repro.fuzz.descriptions import FilterDesc, ProgramDesc, SplitJoinDesc
from repro.fuzz.generator import generate_program
from repro.fuzz.shrink import _size, shrink


def _big_desc() -> ProgramDesc:
    branch_a = (FilterDesc(name="a1", kind="stateful", pop=2, push=2,
                           scale=1.5, funcs=("abs",)),)
    branch_b = (FilterDesc(name="b1", kind="map", pop=2, push=2, scale=2.0),)
    sj = SplitJoinDesc(kind="roundrobin", weights=(2, 3),
                       branches=(branch_a, branch_b))
    tail = FilterDesc(name="t", kind="peeking", pop=3, push=2, peek_extra=2,
                      scale=-1.5, offset=0.5, funcs=("sin", "floor"))
    return ProgramDesc(source_push=5, stages=(sj, tail), name="big")


def test_shrink_to_trivial_when_everything_fails():
    """With an always-true predicate the fixpoint is the minimal program."""
    result = shrink(_big_desc(), lambda d: True)
    assert result.filter_count() <= 2  # source (+ maybe one stage)
    assert result.source_push == 1


def test_shrink_noop_when_nothing_else_fails():
    """A predicate pinned to the original accepts no candidate."""
    original = _big_desc()
    result = shrink(original, lambda d: d == original)
    assert result == original


def test_shrink_preserves_failure_property():
    """Shrinking against 'contains a peeking filter' keeps one."""

    def has_peeking(desc: ProgramDesc) -> bool:
        def check(stage) -> bool:
            if isinstance(stage, FilterDesc):
                return stage.kind == "peeking"
            return any(check(s) for b in stage.branches for s in b)
        return any(check(s) for s in desc.stages)

    result = shrink(_big_desc(), has_peeking)
    assert has_peeking(result)
    assert result.filter_count() <= 2


def test_shrink_is_deterministic():
    rng = random.Random(13)
    desc = generate_program(rng, index=0, max_stages=4)
    pred = lambda d: True  # noqa: E731
    assert shrink(desc, pred) == shrink(desc, pred)


def test_shrink_never_increases_size():
    desc = _big_desc()
    result = shrink(desc, lambda d: True)
    assert _size(result) <= _size(desc)


def test_shrink_respects_eval_budget():
    calls = []

    def pred(d: ProgramDesc) -> bool:
        calls.append(d)
        return False

    shrink(_big_desc(), pred, max_evals=5)
    assert len(calls) <= 5


def test_shrink_collapses_splitjoin_to_branch():
    """A failure inside one branch shrinks the split-join away entirely."""

    def has_stateful(desc: ProgramDesc) -> bool:
        def check(stage) -> bool:
            if isinstance(stage, FilterDesc):
                return stage.kind == "stateful"
            return any(check(s) for b in stage.branches for s in b)
        return any(check(s) for s in desc.stages)

    result = shrink(_big_desc(), has_stateful)
    assert has_stateful(result)
    # The split-join should be gone: its stateful branch got inlined.
    assert all(isinstance(s, FilterDesc) for s in result.stages)
