"""Mutation testing of the tape layer of the vector data plane.

:mod:`repro.runtime.tape` carries one deliberately injectable defect —
``_MUT_ND_WINDOW_SHIFT`` — which rotates every ndarray window read by
that many slots: the classic off-by-one ring-wrap bug in a buffer that
hands out zero-copy views.  Armed, it corrupts both the list windows
(``peek_block``) and the array views (``peek_block_array``) of
:class:`~repro.runtime.tape.NdTape`, while the plain list :class:`Tape`
stays correct.

These tests prove the two oracles that guard the tape layer are not
vacuous: the unit-level differential replay (list tape vs nd tape) and
the end-to-end interp-vs-vector fuzz axis must both catch the armed
defect — and the campaign must shrink it to a small repro — while the
identical runs are clean with the seam disarmed.
"""

from __future__ import annotations

import random

import pytest

np = pytest.importorskip("numpy")

import repro.runtime.tape as tape_mod
from repro.apps.sources import checksum_sink, ramp_source
from repro.fuzz import check_program, run_fuzz
from repro.fuzz.harness import check_graph
from repro.graph.actor import FilterSpec
from repro.graph.flatten import flatten
from repro.graph.structure import Program, pipeline
from repro.ir import WorkBuilder

from ..runtime.test_tape_properties import random_op, replay_differential

MUTATION_BUDGET = 8


def _windowed_graph():
    """source(8) -> worker(pop 2, push 2; fires 4x) -> sink(8).

    Rate-mismatched so batched reads pull multi-element windows — a
    window shift is invisible on length-1 reads (``np.roll`` of a single
    element is the identity)."""
    b = WorkBuilder()
    x = b.let("x", b.pop())
    y = b.let("y", b.pop())
    b.push(x - y)
    b.push(x * 2.0)
    worker = FilterSpec("worker", pop=2, push=2, work_body=b.build())
    return flatten(Program("tapemut", pipeline(
        ramp_source("src", push=8, step=0.5), worker,
        checksum_sink("sink", pop=8))))


# -- the unit-level differential oracle catches the armed seam ----------------

@pytest.mark.fuzz
def test_differential_replay_catches_window_shift(monkeypatch):
    """The property suite's replay (Tape vs NdTape) must fail fast once
    the ring-wrap defect is armed — multi-element windows come back
    rotated on the nd side only."""
    ops = [("push", 1.0), ("push", 2.0), ("push", 3.0), ("peek_block", 3)]
    replay_differential(ops)  # control arm: clean while disarmed
    monkeypatch.setattr(tape_mod, "_MUT_ND_WINDOW_SHIFT", 1)
    with pytest.raises(AssertionError):
        replay_differential(ops)


def _numeric_op(rng: random.Random):
    """Like :func:`random_op` but drawing only nd-representable values,
    so the tape never takes the (sticky) degrade exit where the armed
    seam would be invisible."""
    while True:
        op = random_op(rng)
        values = op[1:2] if op[0] in ("push", "rpush") else \
            op[3] if op[0] == "write_strided" else ()
        if all(isinstance(v, (int, float)) and not isinstance(v, bool)
               and abs(v) < 2 ** 40 for v in values):
            return op


@pytest.mark.fuzz
def test_random_sequences_catch_window_shift(monkeypatch):
    """Most seeded random sequences must trip over the defect — the op
    mix reads multi-element windows often enough that the armed seam
    cannot hide (as long as the tape stays on the nd path)."""
    monkeypatch.setattr(tape_mod, "_MUT_ND_WINDOW_SHIFT", 1)
    caught = 0
    for seed in range(10):
        rng = random.Random(seed)
        try:
            replay_differential([_numeric_op(rng) for _ in range(250)])
        except AssertionError:
            caught += 1
    assert caught >= 5, \
        f"only {caught}/10 sequences noticed the armed window shift"


# -- the end-to-end interp-vs-vector oracle catches it too --------------------

@pytest.mark.fuzz
def test_vector_axis_catches_window_shift(monkeypatch):
    graph = _windowed_graph()
    assert check_graph(graph, backends=("vector",)).ok  # control arm
    monkeypatch.setattr(tape_mod, "_MUT_ND_WINDOW_SHIFT", 1)
    report = check_graph(graph, backends=("vector",))
    assert not report.ok, "oracle missed the armed tape window shift"
    div = report.divergences[0]
    assert div.kind == "backend"
    assert div.config.endswith("/vector")


@pytest.mark.fuzz
def test_fuzz_campaign_catches_window_shift_and_shrinks(monkeypatch,
                                                        tmp_path):
    monkeypatch.setattr(tape_mod, "_MUT_ND_WINDOW_SHIFT", 1)
    report = run_fuzz(0, MUTATION_BUDGET, corpus_dir=tmp_path,
                      max_findings=1, backends=("vector",))
    assert report.findings, "campaign missed the armed tape defect"
    finding = report.findings[0]
    assert finding.divergence.kind == "backend"
    assert finding.divergence.config.endswith("/vector")
    assert finding.minimized.filter_count() <= 3, finding.minimized
    # The minimized repro still provokes the divergence while armed…
    assert not check_program(finding.minimized, backends=("vector",)).ok
    # …and replays clean once the seam is disarmed.
    monkeypatch.setattr(tape_mod, "_MUT_ND_WINDOW_SHIFT", 0)
    assert check_program(finding.minimized, backends=("vector",)).ok
    assert finding.repro_path is not None and finding.repro_path.is_file()


@pytest.mark.fuzz
def test_clean_campaign_with_seam_disarmed():
    """Control arm: same seed and budget, seam at rest — zero findings,
    so the detections above are signal, not flakiness."""
    assert tape_mod._MUT_ND_WINDOW_SHIFT == 0
    report = run_fuzz(0, MUTATION_BUDGET, backends=("vector",))
    assert report.ok, "\n".join(str(f.divergence) for f in report.findings)
