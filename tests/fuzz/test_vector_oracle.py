"""Mutation testing of the vector-backend oracle axis.

The fuzz matrix gained a third backend (``…/vector``); these tests prove
that axis is not vacuous.  :mod:`repro.runtime.vector.kernel` carries two
deliberately injectable defects — ``_MUT_READ_SHIFT`` (off-by-one on
every batched slab read) and ``_MUT_SWAP_SUB`` (swapped subtraction
operands) — representing the two classic ways a batch kernel miscompiles:
wrong *addressing* and wrong *arithmetic*.  With either seam armed, the
interp-vs-vector oracle must diverge; with both disarmed, the identical
campaign must be clean.

Batch kernels only execute for actors firing more than once per checked
iteration, so the direct oracle tests use a rate-mismatched pipeline
(source pushes 8, worker pops 2 → 4 firings) rather than a 1:1 graph.
"""

from __future__ import annotations

import pytest

np = pytest.importorskip("numpy")

import repro.runtime.vector.kernel as vector_kernel
from repro.apps.sources import checksum_sink, ramp_source
from repro.fuzz import check_program, run_fuzz
from repro.fuzz.harness import OPTION_SETS, check_graph, default_backends
from repro.simd import list_targets
from repro.graph.actor import FilterSpec
from repro.graph.flatten import flatten
from repro.graph.structure import Program, pipeline
from repro.ir import WorkBuilder

MUTATION_BUDGET = 8


def _multi_firing_graph(op: str):
    """source(8) -> worker(pop 2, push 2; fires 4x) -> sink(8)."""
    b = WorkBuilder()
    x = b.let("x", b.pop())
    y = b.let("y", b.pop())
    b.push((x - y) if op == "sub" else (x + y))
    b.push(x * 2.0)
    worker = FilterSpec("worker", pop=2, push=2, work_body=b.build())
    return flatten(Program("mut", pipeline(
        ramp_source("src", push=8, step=0.5), worker,
        checksum_sink("sink", pop=8))))


def test_default_backends_includes_vector():
    assert default_backends() == ("compiled", "vector")


def test_three_backend_axis_is_clean_when_unmutated():
    report = check_graph(_multi_firing_graph("sub"),
                         backends=("compiled", "vector"))
    assert report.ok, "\n".join(str(d) for d in report.divergences)
    # scalar runs on core-i7 only; every other option set runs on every
    # registered target (targets registered later join automatically).
    expected = 1 + (len(OPTION_SETS) - 1) * len(list_targets())
    assert report.configs_checked == expected


@pytest.mark.fuzz
@pytest.mark.parametrize("seam,value,op", [
    ("_MUT_READ_SHIFT", 1, "add"),
    ("_MUT_SWAP_SUB", True, "sub"),
])
def test_injected_kernel_defect_is_caught(monkeypatch, seam, value, op):
    graph = _multi_firing_graph(op)
    # Control arm first: the graph is clean before the seam is armed.
    assert check_graph(graph, backends=("vector",)).ok
    monkeypatch.setattr(vector_kernel, seam, value)
    report = check_graph(graph, backends=("vector",))
    assert not report.ok, f"oracle missed armed {seam}"
    div = report.divergences[0]
    assert div.kind == "backend"
    assert div.config.endswith("/vector")


@pytest.mark.fuzz
def test_fuzz_campaign_catches_read_shift_and_shrinks(monkeypatch, tmp_path):
    monkeypatch.setattr(vector_kernel, "_MUT_READ_SHIFT", 1)
    report = run_fuzz(0, MUTATION_BUDGET, corpus_dir=tmp_path,
                      max_findings=1, backends=("vector",))
    assert report.findings, "campaign missed the armed read-shift defect"
    finding = report.findings[0]
    assert finding.divergence.kind == "backend"
    assert finding.divergence.config.endswith("/vector")
    assert finding.minimized.filter_count() <= 3, finding.minimized
    # The minimized repro still provokes the divergence while armed…
    assert not check_program(finding.minimized, backends=("vector",)).ok
    # …and replays clean once the seam is disarmed.
    monkeypatch.setattr(vector_kernel, "_MUT_READ_SHIFT", 0)
    assert check_program(finding.minimized, backends=("vector",)).ok
    assert finding.repro_path is not None and finding.repro_path.is_file()


@pytest.mark.fuzz
def test_clean_campaign_over_vector_axis():
    """Control arm: same seed and budget, seams disarmed, vector-only
    axis — zero findings, so the detections above are signal."""
    assert vector_kernel._MUT_READ_SHIFT == 0
    assert not vector_kernel._MUT_SWAP_SUB
    report = run_fuzz(0, MUTATION_BUDGET, backends=("vector",))
    assert report.ok, "\n".join(str(f.divergence) for f in report.findings)
