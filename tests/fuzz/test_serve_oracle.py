"""The serve-parity fuzz oracle: a session through the serving runtime
must be event-identical to direct execution — and the oracle must catch
a corrupted result serializer (mutation tests on the wire seam)."""

from __future__ import annotations

import random

import pytest

from repro.fuzz import (SERVE_PIPELINES, SERVE_TRANSPORTS,
                        check_serve_program, generate_program)
from repro.serve import WorkerEnv

#: Same smoke seeds as the parallel oracle; CI replays these exactly.
SMOKE_SEEDS = (0, 1, 2)


@pytest.mark.fuzz
@pytest.mark.parametrize("transport", SERVE_TRANSPORTS)
@pytest.mark.parametrize("seed", SMOKE_SEEDS)
def test_generated_programs_are_serve_clean(seed, transport):
    desc = generate_program(random.Random(seed))
    report = check_serve_program(desc, stop_on_first=False,
                                 wire_transport=transport)
    assert report.executions > 0
    assert report.ok, "\n".join(
        f"{d.kind} @ {d.config}: {d.detail}" for d in report.divergences)


@pytest.mark.fuzz
def test_oracle_rejects_unknown_transport():
    desc = generate_program(random.Random(0))
    with pytest.raises(ValueError, match="wire_transport"):
        check_serve_program(desc, wire_transport="carrier-pigeon")


@pytest.mark.fuzz
def test_oracle_covers_pipeline_matrix():
    desc = generate_program(random.Random(0))
    report = check_serve_program(desc)
    assert report.configs_checked == len(SERVE_PIPELINES)


@pytest.mark.fuzz
def test_oracle_reuses_a_persistent_environment():
    """Passing one ``env`` across programs is the long-lived-worker
    shape; later sessions must still check clean against fresh direct
    references (the persistent caches leak nothing across programs)."""
    env = WorkerEnv("compiled")
    for seed in SMOKE_SEEDS:
        desc = generate_program(random.Random(seed))
        report = check_serve_program(desc, env=env, stop_on_first=False)
        assert report.ok, "\n".join(
            f"{d.kind} @ {d.config}: {d.detail}"
            for d in report.divergences)
    assert env.stats.sessions == len(SMOKE_SEEDS) * len(SERVE_PIPELINES)


# -- mutation tests: corrupt the serializer, the oracle must notice ----------

def _first_divergence(report):
    assert not report.ok, "oracle missed an injected wire corruption"
    return report.divergences[0]


@pytest.mark.fuzz
def test_oracle_catches_corrupted_outputs():
    desc = generate_program(random.Random(0))

    def corrupt(wire):
        if wire["outputs"]:
            wire["outputs"] = list(wire["outputs"])
            wire["outputs"][0] = wire["outputs"][0] + 1e6
        else:  # pragma: no cover - generated programs always emit output
            wire["outputs"] = [1.0]
        return wire

    div = _first_divergence(
        check_serve_program(desc, wire_filter=corrupt, stop_on_first=False))
    assert div.kind == "serve"
    assert "outputs differ" in div.detail


@pytest.mark.fuzz
def test_oracle_catches_corrupted_counter_bags():
    desc = generate_program(random.Random(1))

    def corrupt(wire):
        bags = {aid: dict(bag) for aid, bag in wire["steady_bags"].items()}
        aid = next(iter(bags))
        event = next(iter(bags[aid]))
        bags[aid][event] += 1
        wire["steady_bags"] = bags
        return wire

    div = _first_divergence(
        check_serve_program(desc, wire_filter=corrupt, stop_on_first=False))
    assert div.kind == "serve"
    assert "counter bags differ" in div.detail


@pytest.mark.fuzz
def test_oracle_catches_wire_version_skew():
    desc = generate_program(random.Random(2))

    def corrupt(wire):
        wire["v"] = 999
        return wire

    report = check_serve_program(desc, wire_filter=corrupt,
                                 stop_on_first=False)
    assert not report.ok
    assert any("wire version" in d.detail for d in report.divergences)


@pytest.mark.fuzz
def test_oracle_catches_smuggled_error(monkeypatch):
    """A serializer that turns failures into empty-but-ok results is the
    nastiest corruption; the parity check must still flag it."""
    desc = generate_program(random.Random(0))

    def corrupt(wire):
        wire["error"] = None
        wire["outputs"] = []
        wire["init_outputs"] = []
        wire["steady_bags"] = {}
        wire["init_bags"] = {}
        return wire

    report = check_serve_program(desc, wire_filter=corrupt,
                                 stop_on_first=False)
    assert not report.ok
    assert all(d.kind == "serve" for d in report.divergences)


@pytest.mark.fuzz
def test_oracle_catches_corrupted_shm_envelope():
    """With the shm transport, the output arrays live in shared memory
    and only the envelope crosses the wire — so the oracle must notice
    an envelope whose claims don't match the segment."""
    desc = generate_program(random.Random(0))
    orphaned = []

    def corrupt(wire):
        if wire.get("shm"):
            orphaned.extend(meta["name"] for meta in wire["shm"].values())
            field = next(iter(wire["shm"]))
            wire["shm"][field]["count"] = 10 ** 6  # overclaim the segment
        return wire

    report = check_serve_program(desc, wire_transport="shm",
                                 wire_filter=corrupt, stop_on_first=False)
    from multiprocessing import shared_memory
    for name in orphaned:  # the load abort strands this result's segments
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        seg.close()
        seg.unlink()
    assert not report.ok
    assert any("claims" in d.detail for d in report.divergences)


@pytest.mark.fuzz
def test_shm_transport_corruption_of_outputs_is_caught():
    """The queue-path mutation test, replayed over shm: corrupting the
    values *after* they come back from the segment must still diverge
    (the oracle compares payloads, not transports)."""
    desc = generate_program(random.Random(1))

    orphaned = []

    def corrupt(wire):
        shm = wire.get("shm") or {}
        if "outputs" in shm:
            # Redirect the envelope at a forged segment name: the load
            # must fail loudly, not silently return empty outputs.  The
            # abort strands this result's real segments; note them all.
            orphaned.extend(meta["name"] for meta in shm.values())
            shm["outputs"]["name"] = "mxforged0s0o"
        return wire

    report = check_serve_program(desc, wire_transport="shm",
                                 wire_filter=corrupt, stop_on_first=False)
    # The redirect orphaned the real segments; scavenge them the way the
    # pool's registry would.
    from multiprocessing import shared_memory
    for name in orphaned:
        try:
            seg = shared_memory.SharedMemory(name=name)
        except FileNotFoundError:
            continue
        seg.close()
        seg.unlink()
    assert not report.ok
    assert any("vanished" in d.detail for d in report.divergences)


@pytest.mark.fuzz
def test_wire_filter_refused_on_live_pool():
    desc = generate_program(random.Random(0))
    with pytest.raises(ValueError):
        check_serve_program(desc, pool=object(), wire_filter=lambda w: w)
