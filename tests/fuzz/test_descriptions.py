"""Unit tests for the fuzz description AST, generator, and materializer."""

from __future__ import annotations

import random

import pytest

from repro.fuzz.descriptions import (FilterDesc, ProgramDesc, SplitJoinDesc,
                                     desc_from_dict, desc_to_dict,
                                     materialize)
from repro.fuzz.generator import generate_program
from repro.graph.flatten import flatten
from repro.graph.validate import collect_problems
from repro.runtime import execute
from repro.schedule import build_schedule
from repro.simd.machine import CORE_I7


def _gen(seed: int, count: int):
    rng = random.Random(seed)
    return [generate_program(rng, index=i) for i in range(count)]


def test_generator_is_deterministic():
    assert _gen(42, 10) == _gen(42, 10)


def test_generator_seeds_differ():
    assert _gen(1, 5) != _gen(2, 5)


@pytest.mark.parametrize("seed", [0, 1, 2, 3])
def test_generated_programs_are_valid_and_runnable(seed):
    for desc in _gen(seed, 5):
        graph = flatten(materialize(desc))
        assert collect_problems(graph) == []
        result = execute(graph, build_schedule(graph), machine=CORE_I7,
                         iterations=1)
        assert result.outputs, desc


def test_json_roundtrip_exact():
    for desc in _gen(7, 20):
        assert desc_from_dict(desc_to_dict(desc)) == desc


def test_roundtrip_preserves_materialized_outputs():
    desc = _gen(11, 1)[0]
    twin = desc_from_dict(desc_to_dict(desc))
    g1 = flatten(materialize(desc))
    g2 = flatten(materialize(twin))
    r1 = execute(g1, build_schedule(g1), machine=CORE_I7, iterations=2)
    r2 = execute(g2, build_schedule(g2), machine=CORE_I7, iterations=2)
    assert r1.outputs == r2.outputs


def test_filter_count_matches_flat_graph():
    from repro.graph.actor import FilterSpec
    for desc in _gen(5, 10):
        graph = flatten(materialize(desc))
        actual = sum(1 for a in graph.actors.values()
                     if isinstance(a.spec, FilterSpec))
        assert desc.filter_count() == actual, desc


def test_generator_covers_interesting_features():
    """Across a modest budget the generator must hit every description
    axis the ISSUE calls for."""
    descs = _gen(0, 60)
    kinds = set()
    saw_splitjoin = saw_roundrobin = saw_unequal = saw_int = False
    saw_horizontal_width = False

    def visit(stage):
        nonlocal saw_splitjoin, saw_roundrobin, saw_unequal
        nonlocal saw_horizontal_width
        if isinstance(stage, FilterDesc):
            kinds.add(stage.kind)
            return
        saw_splitjoin = True
        if stage.kind == "roundrobin":
            saw_roundrobin = True
        if len(set(stage.weights)) > 1:
            saw_unequal = True
        if len(stage.branches) in (4, 8) and len(set(stage.weights)) == 1:
            saw_horizontal_width = True
        for branch in stage.branches:
            for inner in branch:
                visit(inner)

    for desc in descs:
        if desc.source_dtype == "int":
            saw_int = True
        for stage in desc.stages:
            visit(stage)

    assert kinds >= {"map", "peeking", "stateful", "prework"}
    assert saw_splitjoin and saw_roundrobin and saw_unequal
    assert saw_int
    assert saw_horizontal_width


def test_horizontal_candidates_actually_merge():
    """Isomorphic split-joins must trigger actual horizontal SIMDization
    somewhere in a small campaign (the generator's whole point)."""
    from repro.simd.pipeline import compile_graph
    hit = False
    for desc in _gen(0, 40):
        graph = flatten(materialize(desc))
        report = compile_graph(graph, CORE_I7).report
        if report.horizontal_splitjoins:
            hit = True
            break
    assert hit


def test_splitjoin_requires_two_branches():
    f = FilterDesc(name="x")
    with pytest.raises(ValueError):
        SplitJoinDesc(kind="duplicate", weights=(1,), branches=((f,),))


def test_materialize_appends_tail_after_splitjoin():
    f = FilterDesc(name="a")
    sj = SplitJoinDesc(kind="duplicate", weights=(1, 1),
                       branches=((f,), (FilterDesc(name="b"),)))
    desc = ProgramDesc(source_push=2, stages=(sj,))
    graph = flatten(materialize(desc))
    assert collect_problems(graph) == []
    # source + 2 branch filters + tail
    assert desc.filter_count() == 4
