"""Budgeted fuzz smoke campaign + corpus replay.

This is the test every future transformation PR runs: a small seeded
campaign through the full oracle matrix (seed overridable with
``pytest --fuzz-seed N``), plus a deterministic replay of every
minimized repro stored in ``tests/fuzz_corpus/``.
"""

from __future__ import annotations

import pytest

from repro.fuzz import DEFAULT_CORPUS, load_corpus, replay_corpus, run_fuzz

#: Programs per smoke campaign — small enough for the tier-1 loop,
#: large enough to hit split-joins and horizontal merges.
SMOKE_BUDGET = 12


@pytest.mark.fuzz
def test_smoke_campaign_is_divergence_free(fuzz_seed):
    report = run_fuzz(fuzz_seed, SMOKE_BUDGET)
    assert report.programs == SMOKE_BUDGET
    assert report.configs_checked > 0 and report.executions > 0
    assert report.ok, "\n".join(
        str(f.divergence) for f in report.findings)


@pytest.mark.fuzz
def test_campaigns_are_reproducible(fuzz_seed):
    a = run_fuzz(fuzz_seed, 3)
    b = run_fuzz(fuzz_seed, 3)
    assert (a.programs, a.configs_checked, a.executions) == \
        (b.programs, b.configs_checked, b.executions)
    assert [f.divergence for f in a.findings] == \
        [f.divergence for f in b.findings]


@pytest.mark.fuzz
def test_corpus_is_populated():
    """The in-tree corpus must contain at least the minimized repros the
    mutation tests produce — an empty corpus means the regression replay
    is vacuous."""
    assert load_corpus(DEFAULT_CORPUS), (
        f"no repro_*.json files in {DEFAULT_CORPUS}")


@pytest.mark.fuzz
def test_corpus_replays_clean():
    """Every stored repro documents a *fixed* (or deliberately injected)
    bug; on a healthy tree the whole corpus passes the oracle matrix."""
    result = replay_corpus(DEFAULT_CORPUS)
    assert result.checked == len(load_corpus(DEFAULT_CORPUS))
    assert result.ok, "\n".join(
        f"{path.name}: {div}" for path, div in result.failures)
