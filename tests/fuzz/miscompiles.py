"""Deliberate miscompile injectors for fuzz mutation tests.

Each injector is a :data:`repro.fuzz.harness.GraphTransform` — a function
``(graph, config_label) -> graph`` the harness applies to every
*transformed* graph before execution.  They simulate the classes of
compiler bug the oracles must catch: wrong arithmetic, dropped pushes,
corrupted state, and mangled splitter weights.  Scalar configs are left
untouched so the scalar reference stream stays trustworthy.
"""

from __future__ import annotations

from dataclasses import replace

from repro.graph.actor import FilterSpec
from repro.graph.stream_graph import StreamGraph
from repro.ir import expr as E
from repro.ir import stmt as S
from repro.ir.visitors import rewrite_body_exprs


def _is_scalar(config: str) -> bool:
    return config.startswith("scalar")


def break_first_mul(graph: StreamGraph, config: str) -> StreamGraph:
    """Rewrite the first ``*`` into ``+`` in the first consuming filter —
    the classic wrong-opcode miscompile."""
    if _is_scalar(config):
        return graph
    for actor in graph.actors.values():
        if not isinstance(actor.spec, FilterSpec) or actor.spec.pop == 0:
            continue
        hit = [False]

        def fix(e: E.Expr) -> E.Expr:
            if isinstance(e, E.BinaryOp) and e.op == "*" and not hit[0]:
                hit[0] = True
                return E.BinaryOp("+", e.left, e.right)
            return e

        new_body = rewrite_body_exprs(actor.spec.work_body, fix)
        if hit[0]:
            actor.spec = replace(actor.spec, work_body=new_body)
            return graph
    return graph


def drop_last_push(graph: StreamGraph, config: str) -> StreamGraph:
    """Delete the final Push statement of the terminal filter — a dropped
    output that the rate oracle (and tape conservation) must notice."""
    if _is_scalar(config):
        return graph
    terminals = [a for a in graph.actors.values()
                 if isinstance(a.spec, FilterSpec) and not graph.out_tapes(a.id)
                 and a.spec.push > 0]
    if not terminals:
        return graph
    actor = terminals[0]
    body = list(actor.spec.work_body)
    for i in range(len(body) - 1, -1, -1):
        if isinstance(body[i], (S.Push, S.VPush, S.RPush, S.ScatterPush)):
            del body[i]
            actor.spec = replace(actor.spec, work_body=tuple(body))
            break
    return graph


def corrupt_state_init(graph: StreamGraph, config: str) -> StreamGraph:
    """Perturb the initial value of the first scalar state variable —
    a state-layout bug visible only through stateful filters."""
    if _is_scalar(config):
        return graph
    for actor in graph.actors.values():
        spec = actor.spec
        if not isinstance(spec, FilterSpec) or not spec.state:
            continue
        for si, sv in enumerate(spec.state):
            if sv.size == 0 and isinstance(sv.init, (int, float)):
                bumped = replace(sv, init=sv.init + 1)
                state = spec.state[:si] + (bumped,) + spec.state[si + 1:]
                actor.spec = replace(spec, state=state)
                return graph
    return graph


#: name -> injector, for parametrized mutation tests.
INJECTORS = {
    "wrong-op": break_first_mul,
    "dropped-push": drop_last_push,
    "bad-state-init": corrupt_state_init,
}
