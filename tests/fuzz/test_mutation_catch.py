"""Mutation testing of the oracle stack: inject a deliberate miscompile,
prove the fuzzer catches it, shrinks it to a tiny repro, and persists it.

These tests are the evidence that the harness is not vacuous — each
injected bug class (wrong opcode, dropped push, corrupted state init)
must be detected by at least one oracle, and the shrinker must reduce
the offending program to at most three filter actors.  The minimized
``wrong-op`` repro is saved into the in-tree corpus
(``tests/fuzz_corpus/``): content-addressed filenames make the write
idempotent, and without the injector the repro replays clean — which is
exactly what :mod:`tests.fuzz.test_fuzz_smoke` asserts.
"""

from __future__ import annotations

import json

import pytest

from repro.fuzz import (DEFAULT_CORPUS, check_program, desc_hash,
                        load_corpus, run_fuzz, save_repro)
from repro.fuzz.descriptions import desc_from_dict, desc_to_dict

from .miscompiles import INJECTORS, break_first_mul

#: Enough programs that every injector's trigger pattern appears.
MUTATION_BUDGET = 8


@pytest.mark.fuzz
@pytest.mark.parametrize("name", sorted(INJECTORS))
def test_injected_miscompile_is_caught_and_shrunk(name, tmp_path):
    injector = INJECTORS[name]
    report = run_fuzz(0, MUTATION_BUDGET, graph_transform=injector,
                      corpus_dir=tmp_path, max_findings=1)
    assert report.findings, f"oracles missed injected miscompile {name!r}"
    finding = report.findings[0]
    # Shrunk to a near-minimal program: at most 3 filter actors.
    assert finding.minimized.filter_count() <= 3, finding.minimized
    # The minimized repro still provokes a divergence under the injector…
    still = check_program(finding.minimized, graph_transform=injector)
    assert not still.ok
    # …and was persisted as a replayable JSON file.
    assert finding.repro_path is not None and finding.repro_path.is_file()
    data = json.loads(finding.repro_path.read_text())
    assert desc_from_dict(data["description"]) == finding.minimized
    assert data["divergence"]["kind"] == finding.divergence.kind


@pytest.mark.fuzz
def test_clean_compiler_passes_same_budget():
    """Control arm: the identical campaign without an injector is clean,
    so the mutation detections above are signal, not noise."""
    report = run_fuzz(0, MUTATION_BUDGET)
    assert report.ok, "\n".join(str(f.divergence) for f in report.findings)


@pytest.mark.fuzz
def test_minimized_repro_lands_in_tree_corpus():
    """The shrunk wrong-op repro is committed to ``tests/fuzz_corpus/``
    and stays bit-identical (content-addressed, fully deterministic)."""
    report = run_fuzz(0, MUTATION_BUDGET, graph_transform=break_first_mul,
                      max_findings=1)
    assert report.findings
    minimized = report.findings[0].minimized
    expected = DEFAULT_CORPUS / f"repro_{desc_hash(minimized)}.json"
    assert expected.is_file(), (
        f"regenerate with: save_repro(...) -> {expected}")
    stored = json.loads(expected.read_text())
    assert stored["description"] == desc_to_dict(minimized)
    # Without the injector the stored repro replays clean.
    assert check_program(minimized).ok


@pytest.mark.fuzz
def test_save_repro_is_idempotent(tmp_path):
    report = run_fuzz(0, MUTATION_BUDGET, graph_transform=break_first_mul,
                      max_findings=1)
    minimized = report.findings[0].minimized
    div = report.findings[0].divergence
    p1 = save_repro(minimized, div, tmp_path)
    p2 = save_repro(minimized, div, tmp_path)
    assert p1 == p2
    assert len(load_corpus(tmp_path)) == 1
