"""Tests for the shared DSP building blocks."""

import math

import pytest

from repro.apps.dspkit import (
    adder,
    bandpass_coeffs,
    delay_line,
    downsampler,
    fir_filter,
    gain,
    lowpass_coeffs,
    rectifier,
    upsampler,
)
from repro.runtime import execute
from repro.simd import analyze_filter, is_stateful
from repro.simd.machine import CORE_I7

from ..conftest import linear_program, make_ramp_source


def run(spec, iterations=4, push=4):
    g = linear_program(make_ramp_source(push), spec)
    return execute(g, iterations=iterations).outputs


class TestFilters:
    def test_gain(self):
        assert run(gain("g", 3.0))[:4] == [0.0, 3.0, 6.0, 9.0]

    def test_rectifier(self):
        spec = rectifier()
        g = linear_program(make_ramp_source(2), gain("neg", -1.0), spec)
        outputs = execute(g, iterations=3).outputs
        assert outputs == [0.0, 1.0, 2.0, 3.0, 4.0, 5.0]

    def test_downsampler(self):
        assert run(downsampler("d", 2))[:4] == [0.0, 2.0, 4.0, 6.0]

    def test_upsampler_zero_stuffs(self):
        assert run(upsampler("u", 3))[:6] == [0.0, 0.0, 0.0, 1.0, 0.0, 0.0]

    def test_adder_plain(self):
        assert run(adder("a", 4))[:2] == [6.0, 22.0]

    def test_adder_weighted(self):
        spec = adder("a", 2, weights=(10.0, 1.0))
        assert run(spec)[:2] == [1.0, 23.0]  # 0*10+1, 2*10+3

    def test_fir_is_moving_dot_product(self):
        spec = fir_filter("f", (0.5, 0.25))
        outputs = run(spec, iterations=4)
        # y[n] = 0.5*x[n] + 0.25*x[n+1] over the ramp
        assert outputs[0] == pytest.approx(0.5 * 0.0 + 0.25 * 1.0)
        assert outputs[1] == pytest.approx(0.5 * 1.0 + 0.25 * 2.0)

    def test_fir_decimation(self):
        spec = fir_filter("f", (1.0,), decimation=2)
        outputs = run(spec, iterations=4)
        assert outputs[:3] == [0.0, 2.0, 4.0]

    def test_delay_line(self):
        spec = delay_line("d", depth=2, gain_value=10.0)
        outputs = run(spec, iterations=4)
        # First two outputs are the zero-initialised history.
        assert outputs[:5] == [0.0, 0.0, 0.0, 10.0, 20.0]

    def test_delay_line_is_stateful_but_horizontal_eligible(self):
        from repro.simd.segments import horizontal_verdict
        spec = delay_line("d", 4)
        assert is_stateful(spec)
        assert not analyze_filter(spec, CORE_I7).simdizable
        assert horizontal_verdict(spec, CORE_I7).simdizable


class TestCoefficients:
    def test_lowpass_dc_gain_roughly_unity(self):
        coeffs = lowpass_coeffs(64, math.pi / 2)
        # DC gain of a half-band low-pass ~ 1 (windowed-sinc normalisation).
        assert sum(coeffs) == pytest.approx(1.0, abs=0.05)

    def test_lowpass_symmetry(self):
        coeffs = lowpass_coeffs(16, math.pi / 3)
        assert coeffs == pytest.approx(tuple(reversed(coeffs)))

    def test_bandpass_is_difference_of_lowpass(self):
        taps = 16
        low, high = math.pi / 4, math.pi / 2
        bp = bandpass_coeffs(taps, low, high)
        lo = lowpass_coeffs(taps, low)
        hi = lowpass_coeffs(taps, high)
        assert bp == pytest.approx(tuple(h - l for h, l in zip(hi, lo)))

    def test_fir_spec_rates(self):
        spec = fir_filter("f", lowpass_coeffs(32, 1.0), decimation=4)
        assert spec.peek == 32
        assert spec.pop == 4
        assert spec.push == 1
