"""Negative-path coverage for the benchmark registry lookup."""

from __future__ import annotations

import pytest

from repro.apps.registry import BENCHMARKS, get_benchmark


class TestUnknownName:
    def test_raises_keyerror(self):
        with pytest.raises(KeyError):
            get_benchmark("NoSuchApp")

    def test_message_names_the_request_and_lists_available(self):
        with pytest.raises(KeyError) as info:
            get_benchmark("NoSuchApp")
        message = str(info.value)
        assert "NoSuchApp" in message
        # The message must enumerate valid choices for quick correction.
        for name in ("FMRadio", "RunningExample"):
            assert name in message

    def test_empty_name_rejected(self):
        with pytest.raises(KeyError):
            get_benchmark("")


class TestCaseInsensitiveFallback:
    @pytest.mark.parametrize("alias", ["fmradio", "FMRADIO", "FmRadio"])
    def test_single_case_insensitive_match_resolves(self, alias):
        assert get_benchmark(alias).name == get_benchmark("FMRadio").name

    def test_exact_names_all_resolve(self):
        for name in BENCHMARKS:
            assert get_benchmark(name) is not None

    def test_near_miss_still_rejected(self):
        # Case folding is the only fuzziness on offer — no prefix or
        # typo matching.
        with pytest.raises(KeyError):
            get_benchmark("FMRadi")
