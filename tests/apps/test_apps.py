"""Integration tests: every benchmark compiles, runs, and the SIMDized
graph computes exactly what the scalar graph computes."""

import pytest

from repro.apps import BENCHMARKS, get_benchmark
from repro.graph import flatten, validate
from repro.runtime import execute
from repro.simd import compile_graph
from repro.simd.machine import CORE_I7, CORE_I7_SAGU

ALL_BENCHMARKS = sorted(BENCHMARKS)


@pytest.mark.parametrize("name", ALL_BENCHMARKS)
class TestEveryBenchmark:
    def test_flattens_and_validates(self, name):
        graph = flatten(get_benchmark(name))
        validate(graph)

    def test_scalar_execution_produces_output(self, name):
        graph = flatten(get_benchmark(name))
        result = execute(graph, iterations=2)
        assert result.outputs
        assert all(isinstance(x, (int, float)) for x in result.outputs)

    def test_macro_simdized_outputs_identical(self, name):
        graph = flatten(get_benchmark(name))
        baseline = execute(graph, iterations=2).outputs
        compiled = compile_graph(graph, CORE_I7)
        validate(compiled.graph)
        simdized = execute(compiled.graph, machine=CORE_I7,
                           iterations=1).outputs
        n = min(len(baseline), len(simdized))
        assert n > 0
        assert simdized[:n] == baseline[:n]

    def test_sagu_machine_outputs_identical(self, name):
        graph = flatten(get_benchmark(name))
        baseline = execute(graph, iterations=2).outputs
        compiled = compile_graph(graph, CORE_I7_SAGU)
        simdized = execute(compiled.graph, machine=CORE_I7_SAGU,
                           iterations=1).outputs
        n = min(len(baseline), len(simdized))
        assert simdized[:n] == baseline[:n]

    def test_macro_simdization_speeds_up(self, name):
        graph = flatten(get_benchmark(name))
        scalar = execute(graph, iterations=2).cycles_per_output(CORE_I7)
        compiled = compile_graph(graph, CORE_I7)
        simd = execute(compiled.graph, machine=CORE_I7,
                       iterations=1).cycles_per_output(CORE_I7)
        assert scalar / simd > 1.0

    def test_deterministic_across_runs(self, name):
        a = execute(flatten(get_benchmark(name)), iterations=1).outputs
        b = execute(flatten(get_benchmark(name)), iterations=1).outputs
        assert a == b


class TestRegistry:
    def test_all_twelve_suite_benchmarks_present(self):
        from repro.experiments.harness import DEFAULT_BENCHMARKS
        assert set(DEFAULT_BENCHMARKS) <= set(BENCHMARKS)
        assert len(DEFAULT_BENCHMARKS) == 12

    def test_unknown_benchmark_raises(self):
        with pytest.raises(KeyError):
            get_benchmark("NotABenchmark")

    def test_factories_return_fresh_programs(self):
        a = get_benchmark("FFT")
        b = get_benchmark("FFT")
        assert a is not b


class TestExpectedDecisions:
    """Pin each benchmark's dominant SIMDization technique (the structure
    behind Figures 11 and 12)."""

    def _decisions(self, name):
        graph = flatten(get_benchmark(name))
        report = compile_graph(graph, CORE_I7).report
        kinds = {}
        for decision in report.decisions.values():
            kinds[decision.split(":")[0]] = \
                kinds.get(decision.split(":")[0], 0) + 1
        return kinds, report

    def test_filterbank_is_horizontal(self):
        kinds, report = self._decisions("FilterBank")
        assert kinds.get("horizontal", 0) == 32  # 8 bands x 4 levels
        assert len(report.horizontal_splitjoins) == 1

    def test_beamformer_is_horizontal(self):
        kinds, _ = self._decisions("BeamFormer")
        assert kinds.get("horizontal", 0) == 8

    def test_audiobeam_has_no_vertical(self):
        _, report = self._decisions("AudioBeam")
        assert report.vertical_segments == []

    def test_matmulblock_is_vertical(self):
        _, report = self._decisions("MatrixMultBlock")
        assert any(len(seg) >= 3 for seg in report.vertical_segments)

    def test_fft_pipeline_fused(self):
        _, report = self._decisions("FFT")
        assert any(len(seg) >= 5 for seg in report.vertical_segments)

    def test_vocoder_atan2_actor_stays_scalar(self):
        _, report = self._decisions("Vocoder")
        assert report.decisions["MagPhase"].startswith("scalar:")
        assert "atan2" in report.decisions["MagPhase"]
