"""Pipeline routes are equivalent to the options-gated driver.

``compile_graph`` accepts four pipeline spellings — ``options`` only
(``pipeline=None``), the explicit default pass-name list, a prebuilt
:class:`PassManager`, and named ablation presets.  All must produce the
same report and the same compiled graph, on every registered application
and every registered target (Core-i7, Core-i7+SAGU, NEON-like, SVE-like),
or the refactor silently changed the compiler.
"""

from __future__ import annotations

import pytest

from repro.apps import BENCHMARKS
from repro.experiments.harness import scalar_graph
from repro.passes import PassManager
from repro.runtime import execute
from repro.simd import (
    PASS_NAMES,
    PIPELINES,
    MacroSSOptions,
    compile_graph,
    get_pipeline_options,
    get_target,
    list_pipelines,
    list_targets,
)

ALL_APPS = sorted(BENCHMARKS)
ALL_TARGETS = list_targets()

#: apps whose execution outputs we compare across routes (full app × target
#: compile equivalence is checked for everything; executing everything
#: would dominate suite runtime for no extra signal).
EXECUTED_APPS = ("RunningExample", "BitonicSort")


def report_fingerprint(compiled):
    """Everything the report records that a pipeline could perturb."""
    report = compiled.report
    return (
        report.machine,
        report.scaling_factor,
        dict(report.decisions),
        dict(report.tape_strategies),
        [list(seg) for seg in report.vertical_segments],
        [list(sj) for sj in report.horizontal_splitjoins],
        list(report.skipped_horizontal),
        compiled.graph.summary(),
    )


@pytest.mark.parametrize("target", ALL_TARGETS)
@pytest.mark.parametrize("app", ALL_APPS)
def test_explicit_default_pipeline_matches_options_route(app, target):
    machine = get_target(target)
    source = scalar_graph(app)
    via_options = compile_graph(source, machine)
    via_names = compile_graph(source, machine, pipeline=list(PASS_NAMES))
    via_manager = compile_graph(source, machine,
                                pipeline=PassManager.default())
    expected = report_fingerprint(via_options)
    assert report_fingerprint(via_names) == expected
    assert report_fingerprint(via_manager) == expected


@pytest.mark.parametrize("name", sorted(PIPELINES))
def test_named_pipeline_matches_its_options_preset(name):
    source = scalar_graph("RunningExample")
    machine = get_target("core-i7-sse4+sagu")
    preset = get_pipeline_options(name)
    by_name = compile_graph(source, machine, pipeline=name)
    by_options = compile_graph(source, machine, options=preset)
    assert by_name.report.options == preset
    assert report_fingerprint(by_name) == report_fingerprint(by_options)


@pytest.mark.parametrize("target", ALL_TARGETS)
@pytest.mark.parametrize("app", EXECUTED_APPS)
def test_pipeline_routes_execute_identically(app, target):
    machine = get_target(target)
    source = scalar_graph(app)
    via_options = compile_graph(source, machine)
    via_names = compile_graph(source, machine, pipeline=list(PASS_NAMES))
    ref = execute(via_options.graph, machine=machine, iterations=2)
    alt = execute(via_names.graph, machine=machine, iterations=2)
    assert alt.outputs == ref.outputs
    assert alt.init_outputs == ref.init_outputs


def test_named_pipelines_cover_the_figure_configurations():
    names = list_pipelines()
    for expected in ("full", "scalar", "single-only", "no-tape",
                     "single-only/no-tape"):
        assert expected in names
    assert get_pipeline_options("scalar") == MacroSSOptions(
        single_actor=False, vertical=False, horizontal=False,
        tape_optimization=False)
    assert get_pipeline_options("single-only") == MacroSSOptions(
        vertical=False)


def test_unknown_pipeline_name_did_you_mean():
    with pytest.raises(KeyError) as exc:
        get_pipeline_options("single-onyl")
    assert "did you mean 'single-only'" in str(exc.value)


def test_scalar_pipeline_leaves_graph_scalar():
    source = scalar_graph("RunningExample")
    compiled = compile_graph(source, get_target("core-i7-sse4"),
                             pipeline="scalar")
    assert all(d.startswith("scalar") for d in
               compiled.report.decisions.values())
    assert len(compiled.graph.actors) == len(source.actors)
