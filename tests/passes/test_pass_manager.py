"""Pass-manager mechanics: construction, ordering, errors, verification.

The equivalence of pipelines with the options-gated driver is covered in
``test_pipeline_equivalence.py``; this file pins the machinery itself —
custom pipelines run in the given order, malformed pipelines fail loudly
at construction time, and ``verify_each_pass`` catches a pass that leaves
the work graph invalid, naming the culprit.
"""

from __future__ import annotations

import pytest

from repro.experiments.harness import scalar_graph
from repro.passes import (
    DEFAULT_PASS_NAMES,
    CompilationContext,
    Pass,
    PassBase,
    PassManager,
    PassVerificationError,
    PipelineError,
)
from repro.simd import CORE_I7, PASS_NAMES, compile_graph


class RecordingPass(PassBase):
    """A no-op custom pass that records each invocation."""

    def __init__(self, name: str = "custom.record") -> None:
        self.name = name
        self.calls = 0

    def run(self, ctx: CompilationContext):
        self.calls += 1
        return {"detail": "recorded"}


class NonApplicablePass(PassBase):
    name = "custom.never"

    def __init__(self) -> None:
        self.ran = False

    def applies(self, ctx: CompilationContext) -> bool:
        return False

    def run(self, ctx: CompilationContext):
        self.ran = True


class BreakingPass(PassBase):
    """Deliberately corrupts the work graph: drops an actor but leaves its
    tapes dangling."""

    name = "custom.break"

    def run(self, ctx: CompilationContext):
        victim = next(aid for aid in ctx.work.actors
                      if ctx.work.in_tapes(aid) or ctx.work.out_tapes(aid))
        del ctx.work.actors[victim]
        return {"detail": "broke the graph"}


class TestConstruction:
    def test_default_matches_pass_names(self):
        manager = PassManager.default()
        assert manager.pass_names == PASS_NAMES == DEFAULT_PASS_NAMES
        assert len(manager) == 8

    def test_from_names_preserves_order(self):
        names = ["tape.optimize", "prepass.analysis"]
        manager = PassManager.from_names(names)
        assert manager.pass_names == tuple(names)

    def test_unknown_pass_name(self):
        with pytest.raises(PipelineError) as exc:
            PassManager.from_names(["prepass.analysis", "tape.optimise"])
        message = str(exc.value)
        assert "tape.optimise" in message
        assert "did you mean 'tape.optimize'" in message
        assert "prepass.analysis" in message  # registry listing

    def test_duplicate_pass_rejected(self):
        with pytest.raises(PipelineError, match="duplicate"):
            PassManager.from_names(["prepass.analysis", "prepass.analysis"])

    def test_coerce_rejects_bare_string(self):
        with pytest.raises(PipelineError, match="bare string"):
            PassManager.coerce("prepass.analysis")

    def test_coerce_mixes_names_and_instances(self):
        custom = RecordingPass()
        manager = PassManager.coerce(["prepass.analysis", custom])
        assert manager.pass_names == ("prepass.analysis", "custom.record")
        assert isinstance(manager.passes[1], RecordingPass)

    def test_coerce_passes_manager_through(self):
        manager = PassManager.default()
        assert PassManager.coerce(manager) is manager

    def test_non_pass_object_rejected(self):
        with pytest.raises(PipelineError, match="Pass protocol"):
            PassManager([object()])

    def test_passbase_satisfies_protocol(self):
        assert isinstance(RecordingPass(), Pass)


class TestCustomPipelines:
    def test_custom_order_drives_hook_sequence(self):
        names = ["prepass.analysis", "repetition.adjust", "tape.optimize"]
        trail = []
        compile_graph(scalar_graph("RunningExample"), CORE_I7,
                      pipeline=names,
                      pass_hook=lambda name, g: trail.append(name))
        assert trail == names

    def test_injected_custom_pass_runs(self):
        custom = RecordingPass()
        compile_graph(scalar_graph("RunningExample"), CORE_I7,
                      pipeline=["prepass.analysis", custom])
        assert custom.calls == 1

    def test_non_applicable_pass_skipped_but_hooked(self):
        """applies()=False skips run(), yet span/hook still fire so pass
        trails stay uniform."""
        skipped = NonApplicablePass()
        trail = []
        compile_graph(scalar_graph("RunningExample"), CORE_I7,
                      pipeline=["prepass.analysis", skipped],
                      pass_hook=lambda name, g: trail.append(name))
        assert not skipped.ran
        assert trail == ["prepass.analysis", "custom.never"]

    def test_unknown_name_in_compile_graph_pipeline(self):
        with pytest.raises(PipelineError):
            compile_graph(scalar_graph("RunningExample"), CORE_I7,
                          pipeline=["prepass.analyze"])


class TestVerification:
    def test_default_pipeline_verifies_clean(self):
        compiled = compile_graph(scalar_graph("RunningExample"), CORE_I7,
                                 verify_each_pass=True)
        assert compiled.report.decisions

    def test_broken_pass_is_named(self):
        with pytest.raises(PassVerificationError) as exc:
            compile_graph(scalar_graph("RunningExample"), CORE_I7,
                          pipeline=["prepass.analysis", BreakingPass(),
                                    "tape.optimize"],
                          verify_each_pass=True)
        assert exc.value.pass_name == "custom.break"
        assert exc.value.problems
        assert "custom.break" in str(exc.value)

    def test_without_verification_breakage_goes_unnoticed_here(self):
        """Same broken pipeline, no verify flag: compile_graph itself does
        not re-validate (that is exactly what the flag buys)."""
        compile_graph(scalar_graph("RunningExample"), CORE_I7,
                      pipeline=["prepass.analysis", BreakingPass()])
