"""Tests for the pass-manager architecture (repro.passes)."""
