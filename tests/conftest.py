"""Shared fixtures and graph-building helpers for the test suite."""

from __future__ import annotations

import pytest

from repro.graph import FilterSpec, Program, StateVar, flatten, pipeline
from repro.ir import FLOAT, INT, WorkBuilder
from repro.simd.machine import CORE_I7, CORE_I7_SAGU


def pytest_addoption(parser: pytest.Parser) -> None:
    parser.addoption(
        "--fuzz-seed", type=int, default=0,
        help="seed for the differential fuzz smoke campaign (default: 0)")
    parser.addoption(
        "--update-golden", action="store_true", default=False,
        help="rewrite golden codegen snapshots instead of diffing them")


@pytest.fixture
def fuzz_seed(request: pytest.FixtureRequest) -> int:
    return request.config.getoption("--fuzz-seed")


@pytest.fixture
def update_golden(request: pytest.FixtureRequest) -> bool:
    return request.config.getoption("--update-golden")


@pytest.fixture
def machine():
    return CORE_I7


@pytest.fixture
def sagu_machine():
    return CORE_I7_SAGU


def make_ramp_source(push: int = 4, name: str = "src") -> FilterSpec:
    """Deterministic ramp source: 0, 1, 2, ..."""
    b = WorkBuilder()
    t = b.var("t")
    with b.loop("i", 0, push):
        b.push(t)
        b.set(t, t + 1.0)
    return FilterSpec(name, pop=0, push=push,
                      state=(StateVar("t", FLOAT, 0, 0.0),),
                      work_body=b.build())


def make_scaler(factor: float = 2.0, name: str = "scale",
                pop: int = 1) -> FilterSpec:
    """Stateless element-wise scaler (pop == push == ``pop``)."""
    b = WorkBuilder()
    with b.loop("i", 0, pop):
        b.push(b.pop() * factor)
    return FilterSpec(name, pop=pop, push=pop, work_body=b.build())


def make_pair_sum(name: str = "pairsum") -> FilterSpec:
    """pop 2, push 1: sum of consecutive pairs."""
    b = WorkBuilder()
    b.push(b.pop() + b.pop())
    return FilterSpec(name, pop=2, push=1, work_body=b.build())


def make_expander(name: str = "expand") -> FilterSpec:
    """pop 1, push 2: x -> (x, -x)."""
    b = WorkBuilder()
    x = b.let("x", b.pop())
    b.push(x)
    b.push(-x)
    return FilterSpec(name, pop=1, push=2, work_body=b.build())


def make_accumulator(name: str = "accum") -> FilterSpec:
    """Stateful running sum (pop 1, push 1)."""
    b = WorkBuilder()
    acc = b.var("acc")
    b.set(acc, acc + b.pop())
    b.push(acc)
    return FilterSpec(name, pop=1, push=1,
                      state=(StateVar("acc", FLOAT, 0, 0.0),),
                      work_body=b.build())


def linear_program(*specs: FilterSpec, name: str = "test"):
    """Flatten a source + given filters into a flat graph."""
    return flatten(Program(name, pipeline(*specs)))


def outputs_of(graph, iterations: int = 4, machine=CORE_I7):
    from repro.runtime import execute
    return execute(graph, machine=machine, iterations=iterations).outputs
