"""Property-based tests for the SIMDization transformations: randomly
generated stateless actors must compute identical streams after
single-actor SIMDization and after vertical fusion.

Every property is checked under both execution backends (``interp`` and
``compiled``), and the horizontal-merge property additionally on the
SAGU-equipped machine — the transformed graphs exercise both engines'
gather/scatter paths."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import FilterSpec, Program, flatten, pipeline, validate
from repro.ir import WorkBuilder, call
from repro.runtime import execute
from repro.schedule import repetition_vector
from repro.simd import compile_graph, fuse_segment, vectorize_actor
from repro.simd.machine import CORE_I7, CORE_I7_SAGU

from ..conftest import make_ramp_source

BACKENDS = ("interp", "compiled")

#: Safe unary float transforms to compose random actor bodies from.
_FUNCS = ("abs", "floor", "sqrt_abs", "sin")


def _apply(func: str, expr):
    if func == "sqrt_abs":
        return call("sqrt", call("abs", expr))
    return call(func, expr)


@st.composite
def stateless_actor(draw, name="gen"):
    """A random stateless actor: pop N, transform, push M."""
    pop = draw(st.integers(1, 4))
    push = draw(st.integers(1, 4))
    funcs = draw(st.lists(st.sampled_from(_FUNCS), min_size=0, max_size=2))
    scale = draw(st.floats(min_value=-4, max_value=4,
                           allow_nan=False).map(lambda x: round(x, 3)))
    b = WorkBuilder()
    acc = b.let("acc", 0.0)
    with b.loop("i", 0, pop):
        b.set(acc, acc + b.pop() * scale)
    expr = acc
    for func in funcs:
        expr = _apply(func, expr)
    result = b.let("r", expr)
    for j in range(push):
        b.push(result + float(j))
    return FilterSpec(name, pop=pop, push=push, work_body=b.build())


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=15, deadline=None)
@given(stateless_actor())
def test_single_actor_simdization_preserves_stream(backend, spec):
    graph = flatten(Program("prop", pipeline(
        make_ramp_source(spec.pop * 4), spec)))
    baseline = execute(graph, iterations=2, backend=backend).outputs

    vec_graph = graph.clone()
    actor = vec_graph.actor_by_name(spec.name)
    actor.spec = vectorize_actor(spec, 4)
    validate(vec_graph)
    simdized = execute(vec_graph, iterations=1, backend=backend).outputs
    n = min(len(baseline), len(simdized))
    assert n > 0
    assert simdized[:n] == baseline[:n]


@pytest.mark.parametrize("backend", BACKENDS)
@settings(max_examples=10, deadline=None)
@given(stateless_actor(name="up"), stateless_actor(name="down"))
def test_vertical_fusion_preserves_stream(backend, first, second):
    graph = flatten(Program("prop", pipeline(
        make_ramp_source(first.pop * 4), first, second)))
    baseline = execute(graph, iterations=2, backend=backend).outputs

    fused = graph.clone()
    reps = repetition_vector(fused)
    coarse_id = fuse_segment(
        fused,
        [fused.actor_by_name(first.name).id,
         fused.actor_by_name(second.name).id],
        reps)
    validate(fused)
    fused_out = execute(fused, iterations=2, backend=backend).outputs
    assert fused_out == baseline

    # And SIMDize the coarse actor on top.
    actor = fused.actors[coarse_id]
    actor.spec = vectorize_actor(actor.spec, 4)
    validate(fused)
    simdized = execute(fused, iterations=1, backend=backend).outputs
    n = min(len(baseline), len(simdized))
    assert n > 0
    assert simdized[:n] == baseline[:n]


@pytest.mark.parametrize("machine,backend", [
    (CORE_I7, "interp"),
    (CORE_I7, "compiled"),
    (CORE_I7_SAGU, "interp"),
    (CORE_I7_SAGU, "compiled"),
], ids=["i7-interp", "i7-compiled", "sagu-interp", "sagu-compiled"])
@settings(max_examples=8, deadline=None)
@given(st.lists(st.floats(min_value=0.25, max_value=4.0, allow_nan=False)
                .map(lambda x: round(x, 3)),
                min_size=4, max_size=4))
def test_horizontal_merge_preserves_stream(machine, backend, gains):
    """Four isomorphic gain actors with random constants merge into one
    SIMD actor computing the same split-join."""
    from repro.graph import (roundrobin_joiner, roundrobin_splitter,
                             splitjoin)

    def gain_actor(g, name):
        b = WorkBuilder()
        b.push(b.pop() * g)
        return FilterSpec(name, pop=1, push=1, work_body=b.build())

    graph = flatten(Program("prop", pipeline(
        make_ramp_source(4),
        splitjoin(roundrobin_splitter([1, 1, 1, 1]),
                  [gain_actor(g, f"g{i}") for i, g in enumerate(gains)],
                  roundrobin_joiner([1, 1, 1, 1])),
        gain_actor(1.0, "tail"),
    )))
    baseline = execute(graph, iterations=2, backend=backend).outputs
    compiled = compile_graph(graph, machine)
    assert compiled.report.horizontal_splitjoins
    simdized = execute(compiled.graph, machine=machine,
                       iterations=1, backend=backend).outputs
    n = min(len(baseline), len(simdized))
    assert simdized[:n] == baseline[:n]
