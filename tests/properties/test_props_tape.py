"""Property-based tests for tape FIFO semantics."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.runtime import Tape


@given(st.lists(st.integers(), max_size=200))
def test_fifo_order_preserved(items):
    t = Tape()
    for item in items:
        t.push(item)
    assert [t.pop() for _ in range(len(items))] == items


@given(st.lists(st.integers(), min_size=1, max_size=100),
       st.data())
def test_peek_matches_future_pop(items, data):
    t = Tape()
    for item in items:
        t.push(item)
    offset = data.draw(st.integers(0, len(items) - 1))
    assert t.peek(offset) == items[offset]
    for expected in items:
        assert t.pop() == expected


@given(st.lists(st.tuples(st.booleans(), st.integers()), max_size=300))
def test_interleaved_push_pop_never_reorders(operations):
    """Arbitrary interleavings of push and pop behave like a deque."""
    from collections import deque
    t = Tape()
    model = deque()
    for is_push, value in operations:
        if is_push or not model:
            t.push(value)
            model.append(value)
        else:
            assert t.pop() == model.popleft()
    assert len(t) == len(model)


@given(st.integers(1, 8), st.integers(2, 8), st.integers(1, 4))
def test_strided_scatter_gather_roundtrip(stride, width, groups):
    """rpush-based strided writes followed by strided reads recover the
    lane-major matrix, for any stride/width (generalised Figure 5)."""
    t = Tape()
    total = stride * width * groups
    # Writer: 'groups * stride' write groups as the vectorized actor does.
    for block in range(groups):
        for j in range(stride):
            lanes = [block * width * stride + k * stride + j
                     for k in range(width)]
            for k in range(width - 1, 0, -1):
                t.rpush(lanes[k], k * stride)
            t.push(lanes[0])
        t.advance_writer((width - 1) * stride)
    assert [t.pop() for _ in range(total)] == list(range(total))


@given(st.lists(st.floats(allow_nan=False, allow_infinity=False),
                max_size=100),
       st.integers(0, 50))
def test_advance_reader_equals_pops(items, skip):
    t1, t2 = Tape(), Tape()
    for item in items:
        t1.push(item)
        t2.push(item)
    n = min(skip, len(items))
    t1.advance_reader(n)
    for _ in range(n):
        t2.pop()
    assert len(t1) == len(t2)
    rest1 = [t1.pop() for _ in range(len(t1))]
    rest2 = [t2.pop() for _ in range(len(t2))]
    assert rest1 == rest2


@given(st.lists(st.integers(), min_size=0, max_size=64))
def test_drain_equals_pop_all(items):
    t = Tape()
    for item in items:
        t.push(item)
    assert t.drain() == items
    assert len(t) == 0
