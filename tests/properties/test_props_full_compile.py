"""The strongest property: random stream programs, fully compiled by
MacroSS (all techniques + tape optimization, with and without SAGU), must
compute exactly the scalar stream — under either execution backend."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph import (
    FilterSpec,
    Program,
    StateVar,
    duplicate_splitter,
    flatten,
    pipeline,
    roundrobin_joiner,
    roundrobin_splitter,
    splitjoin,
    validate,
)
from repro.ir import FLOAT, WorkBuilder, call
from repro.runtime import execute
from repro.simd import compile_graph
from repro.simd.machine import CORE_I7, CORE_I7_SAGU

from ..conftest import make_ramp_source


def _stateless(pop: int, push: int, scale: float, name: str) -> FilterSpec:
    b = WorkBuilder()
    acc = b.let("acc", 1.0)
    with b.loop("i", 0, pop):
        b.set(acc, acc + b.pop() * scale)
    r = b.let("r", call("sqrt", call("abs", acc)))
    for j in range(push):
        b.push(r - float(j))
    return FilterSpec(name, pop=pop, push=push, work_body=b.build())


def _stateful(decay: float, name: str) -> FilterSpec:
    b = WorkBuilder()
    s = b.var("s")
    b.set(s, s * decay + b.pop())
    b.push(s)
    return FilterSpec(name, pop=1, push=1,
                      state=(StateVar("s", FLOAT, 0, 0.0),),
                      work_body=b.build())


@st.composite
def random_program(draw):
    counter = [0]

    def fresh() -> str:
        counter[0] += 1
        return f"f{counter[0]}"

    def random_stage():
        kind = draw(st.sampled_from(["stateless", "stateful", "splitjoin"]))
        if kind == "stateless":
            return _stateless(draw(st.integers(1, 3)),
                              draw(st.integers(1, 3)),
                              draw(st.sampled_from([0.5, 1.0, 2.0, -1.5])),
                              fresh())
        if kind == "stateful":
            return _stateful(draw(st.sampled_from([0.5, 0.9])), fresh())
        width = 4
        duplicate = draw(st.booleans())
        iso_scale = draw(st.sampled_from([0.5, 2.0]))
        branches = [_stateless(2, 2, iso_scale + 0.25 * i, fresh())
                    for i in range(width)]
        splitter = (duplicate_splitter(width) if duplicate
                    else roundrobin_splitter([2] * width))
        return splitjoin(splitter, branches, roundrobin_joiner([2] * width))

    stages = [random_stage() for _ in range(draw(st.integers(1, 4)))]
    # The executor collects the terminal *filter*'s pushes: always end with
    # one so a trailing split-join's joiner is not the terminal actor.
    stages.append(_stateless(1, 1, 1.0, "tail"))
    return Program("prop", pipeline(make_ramp_source(4), *stages))


@pytest.mark.parametrize("backend", ["interp", "compiled"])
@settings(max_examples=13, deadline=None)
@given(random_program())
def test_full_macross_preserves_stream(backend, program):
    graph = flatten(program)
    validate(graph)
    baseline = execute(graph, iterations=4, backend=backend).outputs
    for machine in (CORE_I7, CORE_I7_SAGU):
        compiled = compile_graph(graph, machine)
        validate(compiled.graph)
        outputs = execute(compiled.graph, machine=machine,
                          iterations=2, backend=backend).outputs
        n = min(len(baseline), len(outputs))
        assert n > 0
        assert outputs[:n] == baseline[:n]


@settings(max_examples=10, deadline=None)
@given(random_program())
def test_compilation_never_slows_down(program):
    graph = flatten(program)
    base = execute(graph, iterations=2).cycles_per_output(CORE_I7)
    compiled = compile_graph(graph, CORE_I7)
    simd = execute(compiled.graph, machine=CORE_I7,
                   iterations=2).cycles_per_output(CORE_I7)
    # The cost model may find nothing to vectorize, but full MacroSS output
    # should never be slower than scalar by more than noise.
    assert simd <= base * 1.05
