"""Property-based tests for the SAGU address model."""

from hypothesis import given
from hypothesis import strategies as st

from repro.simd.sagu import SAGU, lane_ordered_layout, software_address

push_counts = st.integers(1, 32)
widths = st.sampled_from([2, 4, 8, 16])


@given(push_counts, widths, st.integers(1, 4))
def test_hardware_equals_software(push_count, width, blocks):
    count = push_count * width * blocks
    sagu = SAGU(push_count, width)
    assert sagu.address_stream(count) == [
        software_address(i, push_count, width) for i in range(count)]


@given(push_counts, widths)
def test_addresses_form_block_permutation(push_count, width):
    block = push_count * width
    addresses = [software_address(i, push_count, width) for i in range(block)]
    assert sorted(addresses) == list(range(block))


@given(push_counts, widths, st.integers(0, 500))
def test_block_periodicity(push_count, width, index):
    block = push_count * width
    assert (software_address(index + block, push_count, width)
            == software_address(index, push_count, width) + block)


@given(push_counts, widths, st.integers(1, 3))
def test_layout_roundtrip(push_count, width, blocks):
    items = list(range(push_count * width * blocks))
    layout = lane_ordered_layout(items, push_count, width)
    sagu = SAGU(push_count, width)
    assert [layout[sagu.next_address()] for _ in items] == items


@given(push_counts, widths)
def test_vector_groups_are_contiguous(push_count, width):
    """Each producer group's lanes land in one aligned block of ``width``
    addresses — the precondition for plain vector stores."""
    items = list(range(push_count * width))
    layout = lane_ordered_layout(items, push_count, width)
    for group in range(push_count):
        lanes = layout[group * width:(group + 1) * width]
        # lane k of group j is item k*push_count + j
        assert lanes == [k * push_count + group for k in range(width)]
