"""Property-based tests for interpreter arithmetic and vector lockstep."""

import math

from hypothesis import assume, given
from hypothesis import strategies as st

from repro.ir import expr as E
from repro.ir import stmt as S
from repro.perf import PerfCounters
from repro.runtime import ActorRuntime, Interpreter, Tape
from repro.runtime.values import apply_binary

floats = st.floats(min_value=-1e6, max_value=1e6,
                   allow_nan=False, allow_infinity=False)
small_ints = st.integers(-1000, 1000)


def _eval(expr, inputs=(), sw=4):
    tape_in = Tape()
    for item in inputs:
        tape_in.push(item)
    tape_out = Tape()
    rt = ActorRuntime(0, sw, PerfCounters(), {}, tape_in, tape_out)
    Interpreter(rt).run_work((S.Push(expr),))
    return tape_out.drain()[0]


@given(floats, floats)
def test_binary_ops_match_python_floats(a, b):
    assert _eval(E.FloatConst(a) + E.FloatConst(b)) == a + b
    assert _eval(E.FloatConst(a) * E.FloatConst(b)) == a * b
    assert _eval(E.FloatConst(a) - E.FloatConst(b)) == a - b


@given(small_ints, small_ints)
def test_int_division_truncates_toward_zero(a, b):
    assume(b != 0)
    expected = math.trunc(a / b)
    assert apply_binary("/", a, b) == expected
    assert apply_binary("%", a, b) == a - expected * b


@given(st.lists(floats, min_size=4, max_size=4),
       st.lists(floats, min_size=4, max_size=4))
def test_vector_ops_are_elementwise(lanes_a, lanes_b):
    result = _eval(E.VectorConst(tuple(lanes_a))
                   + E.VectorConst(tuple(lanes_b)))
    assert result == [a + b for a, b in zip(lanes_a, lanes_b)]


@given(floats, st.lists(floats, min_size=4, max_size=4))
def test_scalar_broadcast_matches_splat(scalar, lanes):
    mixed = _eval(E.FloatConst(scalar) * E.VectorConst(tuple(lanes)))
    explicit = _eval(E.Broadcast(E.FloatConst(scalar), 4)
                     * E.VectorConst(tuple(lanes)))
    assert mixed == explicit


@given(st.lists(floats, min_size=8, max_size=8), st.integers(1, 2))
def test_gather_lane_k_is_strided_element(items, stride):
    result = _eval(E.GatherPop(stride=stride), inputs=items)
    assert result == [items[k * stride] for k in range(4)]


@given(st.lists(floats, min_size=4, max_size=4))
def test_vector_math_is_per_lane(lanes):
    result = _eval(E.call("abs", E.VectorConst(tuple(lanes))))
    assert result == [abs(x) for x in lanes]


@given(st.lists(floats, min_size=1, max_size=16))
def test_internal_buffer_is_fifo(values):
    body = tuple(S.InternalPush(0, E.FloatConst(v)) for v in values) + tuple(
        S.Push(E.InternalPop(0)) for _ in values)
    tape_out = Tape()
    rt = ActorRuntime(0, 4, PerfCounters(), {}, None, tape_out)
    Interpreter(rt).run_work(body)
    assert tape_out.drain() == list(values)
