"""Property-based tests for the balance-equation solver and Equation (1)."""

from math import gcd

from hypothesis import given
from hypothesis import strategies as st

from repro.graph import FilterSpec, Program, StreamGraph, flatten, pipeline
from repro.ir import WorkBuilder
from repro.schedule import (
    check_balanced,
    per_actor_factor,
    repetition_vector,
    scale_repetitions,
    simd_scaling_factor,
)

from ..conftest import make_ramp_source

rate = st.integers(1, 12)


def _rate_changer(pop: int, push: int, name: str) -> FilterSpec:
    b = WorkBuilder()
    acc = b.let("acc", 0.0)
    with b.loop("i", 0, pop):
        b.set(acc, acc + b.pop())
    with b.loop("j", 0, push):
        b.push(acc)
    return FilterSpec(name, pop=pop, push=push, work_body=b.build())


@given(st.lists(st.tuples(rate, rate), min_size=1, max_size=5),
       rate)
def test_pipeline_repetition_vector_balances(rates, src_push):
    """Any pipeline of rate changers has a consistent minimal solution."""
    specs = [make_ramp_source(src_push)]
    specs += [_rate_changer(pop, push, f"f{i}")
              for i, (pop, push) in enumerate(rates)]
    graph = flatten(Program("prop", pipeline(*specs)))
    reps = repetition_vector(graph)
    check_balanced(graph, reps)
    assert all(r >= 1 for r in reps.values())


@given(st.lists(st.tuples(rate, rate), min_size=1, max_size=4), rate)
def test_repetition_vector_is_minimal(rates, src_push):
    """The gcd of the solution is 1 (no smaller integer solution)."""
    specs = [make_ramp_source(src_push)]
    specs += [_rate_changer(pop, push, f"f{i}")
              for i, (pop, push) in enumerate(rates)]
    graph = flatten(Program("prop", pipeline(*specs)))
    reps = repetition_vector(graph)
    divisor = 0
    for value in reps.values():
        divisor = gcd(divisor, value)
    assert divisor == 1


@given(st.integers(1, 64), st.sampled_from([2, 4, 8, 16]))
def test_per_actor_factor_properties(rep, sw):
    factor = per_actor_factor(sw, rep)
    assert (factor * rep) % sw == 0           # achieves the multiple
    assert sw % factor == 0                   # divides SW
    for smaller in range(1, factor):
        assert (smaller * rep) % sw != 0      # and is minimal


@given(st.dictionaries(st.integers(0, 10), st.integers(1, 40),
                       min_size=1, max_size=8),
       st.sampled_from([2, 4, 8]))
def test_global_scaling_factor_makes_all_multiples(reps, sw):
    simdizable = list(reps)
    factor = simd_scaling_factor(sw, reps, simdizable)
    scaled = scale_repetitions(reps, factor)
    assert all(scaled[aid] % sw == 0 for aid in simdizable)
    # Minimality of the global factor: no smaller factor works.
    for smaller in range(1, factor):
        assert any((smaller * reps[aid]) % sw != 0 for aid in simdizable)
