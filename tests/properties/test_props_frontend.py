"""Differential property test: the textual frontend computes what Python
computes.

Random arithmetic expression trees are rendered both as a StreamIt-subset
work function and as a Python lambda; executing the parsed program must
match the Python evaluation on a shared input stream.
"""

import math

import pytest
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.frontend import compile_source
from repro.graph import flatten
from repro.runtime import execute

_BIN_OPS = ["+", "-", "*"]
_FUNCS = {"abs": abs, "floor": math.floor, "max": max, "min": min}


@st.composite
def expr_tree(draw, depth=0):
    """Returns (source_text, python_fn) over one variable ``x``."""
    choice = draw(st.integers(0, 3 if depth < 3 else 1))
    if choice == 0:
        return "x", lambda x: x
    if choice == 1:
        value = round(draw(st.floats(min_value=-8, max_value=8,
                                     allow_nan=False)), 2)
        return f"{value}", lambda x, v=value: v
    if choice == 2:
        op = draw(st.sampled_from(_BIN_OPS))
        left_text, left_fn = draw(expr_tree(depth=depth + 1))
        right_text, right_fn = draw(expr_tree(depth=depth + 1))
        fn = {"+": lambda a, b: a + b,
              "-": lambda a, b: a - b,
              "*": lambda a, b: a * b}[op]
        return (f"({left_text} {op} {right_text})",
                lambda x, l=left_fn, r=right_fn, f=fn: f(l(x), r(x)))
    func = draw(st.sampled_from(sorted(_FUNCS)))
    inner_text, inner_fn = draw(expr_tree(depth=depth + 1))
    impl = _FUNCS[func]
    if func in ("max", "min"):
        return (f"{func}({inner_text}, 0.5)",
                lambda x, i=inner_fn, f=impl: f(i(x), 0.5))
    if func == "floor":
        return (f"floor({inner_text})",
                lambda x, i=inner_fn: float(math.floor(i(x))))
    return f"abs({inner_text})", lambda x, i=inner_fn: abs(i(x))


@pytest.mark.parametrize("backend", ["interp", "compiled"])
@settings(max_examples=20, deadline=None)
@given(expr_tree())
def test_parsed_expression_matches_python(backend, tree):
    text, fn = tree
    source = f"""
    void->float filter Src() {{
        float t = 0.0;
        work push 1 {{ push(t); t = t + 0.75; }}
    }}
    float->float filter F() {{
        work pop 1 push 1 {{
            float x = pop();
            push({text});
        }}
    }}
    float->float pipeline Main() {{ add Src(); add F(); }}
    """
    graph = flatten(compile_source(source))
    outputs = execute(graph, iterations=6, backend=backend).outputs
    inputs = [0.75 * i for i in range(6)]
    expected = [fn(x) for x in inputs]
    assert outputs == expected
