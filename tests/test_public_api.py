"""Tests for the top-level public API surface."""

import repro


class TestExports:
    def test_version(self):
        assert repro.__version__

    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_flow(self):
        """The README quickstart must work verbatim-ish."""
        from repro import (
            CORE_I7,
            FilterSpec,
            Program,
            StateVar,
            WorkBuilder,
            compile_graph,
            execute,
            flatten,
            pipeline,
        )
        from repro.ir import FLOAT

        b = WorkBuilder()
        t = b.var("t")
        with b.loop("i", 0, 4):
            b.push(t)
            b.set(t, t + 1.0)
        source = FilterSpec("source", pop=0, push=4,
                            state=(StateVar("t", FLOAT, 0, 0.0),),
                            work_body=b.build())
        b = WorkBuilder()
        b.push(b.pop() * 2.0)
        doubler = FilterSpec("double", pop=1, push=1, work_body=b.build())

        graph = flatten(Program("demo", pipeline(source, doubler)))
        compiled = compile_graph(graph, CORE_I7)
        result = execute(compiled.graph, machine=CORE_I7, iterations=2)
        assert result.outputs[:4] == [0.0, 2.0, 4.0, 6.0]
        assert compiled.report.decisions["double"] == "single"


class TestCli:
    def test_list(self, capsys):
        from repro.cli import main
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "FFT" in out and "RunningExample" in out

    def test_compile_report(self, capsys):
        from repro.cli import main
        assert main(["compile", "RunningExample"]) == 0
        out = capsys.readouterr().out
        assert "3D_2E" in out

    def test_compile_cpp(self, capsys):
        from repro.cli import main
        assert main(["compile", "DCT", "--cpp"]) == 0
        assert "int main()" in capsys.readouterr().out

    def test_run(self, capsys):
        from repro.cli import main
        assert main(["run", "FFT", "--iterations", "1"]) == 0
        out = capsys.readouterr().out
        assert "MacroSS" in out and "outputs identical" in out

    def test_figure_subset(self, capsys):
        from repro.cli import main
        assert main(["fig11", "--benchmarks", "FFT"]) == 0
        assert "vertical improvement" in capsys.readouterr().out
